//! `galgel` analogue: Galerkin power iteration.
//!
//! 178.galgel performs Galerkin-method fluid-stability analysis dominated
//! by dense linear algebra with normalizations. The kernel runs a power
//! iteration on a 64×64 matrix: `y = A·x`, `norm = 1/√(y·y)`,
//! `x = y·norm` — dense FP with the divide/square-root latencies the
//! paper's Table 2 prices at 15 cycles.

use crate::common::{begin_outer_loop, emit_fp_fill, end_outer_loop};
use wsrs_isa::{Assembler, Freg, Program, Reg};

const A: i64 = 0x10_0000;
const XV: i64 = 0x30_0000;
const YV: i64 = 0x31_0000;
const N: i64 = 64;

/// Builds the kernel with `outer` power iterations.
#[must_use]
pub fn build(outer: i64) -> Program {
    let mut a = Assembler::new();
    let r = |i: u8| Reg::new(i);
    let f = |i: u8| Freg::new(i);
    let (i, j, oc, tmp, arow, xp, yp) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7));
    let (acc, av, xv, t0, dot, norm, one) = (f(0), f(1), f(2), f(3), f(4), f(5), f(6));

    emit_fp_fill(&mut a, A, N * N, 0.0005, 0xf00);
    emit_fp_fill(&mut a, XV, N, 0.01, 0xf08);

    a.data_f64(0xf10, 1.0);
    a.li(tmp, 0xf10);
    a.lf(one, tmp, 0);

    let outer_top = begin_outer_loop(&mut a, oc, outer);

    // y = A x
    a.li(i, 0);
    let i_top = a.bind_label();
    a.slli(tmp, i, 9); // i * 64 * 8
    a.li(arow, A);
    a.add(arow, arow, tmp);
    a.li(xp, XV);
    a.fsub(acc, acc, acc); // acc = 0
    a.li(j, 0);
    let j_top = a.bind_label();
    a.lf(av, arow, 0);
    a.lf(xv, xp, 0);
    a.fmul(t0, av, xv);
    a.fadd(acc, acc, t0);
    a.addi(arow, arow, 8);
    a.addi(xp, xp, 8);
    a.addi(j, j, 1);
    a.li(tmp, N);
    a.blt(j, tmp, j_top);
    a.li(yp, YV);
    a.slli(tmp, i, 3);
    a.add(yp, yp, tmp);
    a.sf(yp, 0, acc);
    a.addi(i, i, 1);
    a.li(tmp, N);
    a.blt(i, tmp, i_top);

    // dot = y·y
    a.fsub(dot, dot, dot);
    a.li(yp, YV);
    a.li(i, N);
    let dot_top = a.bind_label();
    a.lf(av, yp, 0);
    a.fmul(t0, av, av);
    a.fadd(dot, dot, t0);
    a.addi(yp, yp, 8);
    a.addi(i, i, -1);
    a.bnez(i, dot_top);

    // norm = 1 / sqrt(dot) — the long-latency tail.
    a.fsqrt(norm, dot);
    a.fdiv(norm, one, norm);

    // x = y * norm
    a.li(yp, YV);
    a.li(xp, XV);
    a.li(i, N);
    let scale_top = a.bind_label();
    a.lf(av, yp, 0);
    a.fmul(av, av, norm);
    a.sf(xp, 0, av);
    a.addi(yp, yp, 8);
    a.addi(xp, xp, 8);
    a.addi(i, i, -1);
    a.bnez(i, scale_top);

    end_outer_loop(&mut a, oc, outer_top);
    a.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrs_isa::Emulator;

    #[test]
    fn iterate_normalizes_x() {
        let mut e = Emulator::new(build(2), 32 << 20);
        for _ in e.by_ref() {}
        // After normalization, Σ x² ≈ 1.
        let mut sum = 0.0;
        for k in 0..N as u64 {
            let v = e.memory().read_f64(XV as u64 + k * 8);
            assert!(v.is_finite());
            sum += v * v;
        }
        assert!((sum - 1.0).abs() < 1e-6, "norm² = {sum}");
    }

    #[test]
    fn uses_divide_and_sqrt() {
        use wsrs_isa::OpClass;
        let n = Emulator::new(build(2), 32 << 20)
            .filter(|d| d.class == OpClass::FpDivSqrt)
            .count();
        assert_eq!(n, 4, "2 iterations x (sqrt + div)");
    }
}
