//! `vpr` analogue: simulated-annealing placement moves.
//!
//! Models 175.vpr's place phase: pick two random cells, compute the cost
//! delta of swapping them, accept or reject on a data-dependent threshold.
//! The accept branch is driven by pseudo-random data, producing the
//! hard-to-predict branch profile (and resulting misprediction stalls) of
//! the real benchmark.

use crate::common::{begin_outer_loop, emit_fill, emit_xorshift, end_outer_loop};
use wsrs_isa::{Assembler, Program, Reg};

/// Cell-position array: 1024 cells.
const POS: i64 = 0x1_0000;
const CELLS_MASK: i64 = 1023;
/// Net-cost lookup array.
const COST: i64 = 0x5_0000;

/// Builds the kernel with `outer` annealing sweeps (4096 moves each).
#[must_use]
pub fn build(outer: i64) -> Program {
    let mut a = Assembler::new();
    let r = |i: u8| Reg::new(i);
    let (rng, tmp, i_idx, j_idx, pi, pj) = (r(1), r(2), r(3), r(4), r(5), r(6));
    let (delta, thresh, acc, rej, moves, oc, base) = (r(7), r(8), r(9), r(10), r(11), r(12), r(13));
    let (ci, cj) = (r(14), r(15));

    emit_fill(&mut a, POS, 1024, 0x243f_6a88, base, moves, pi, tmp);
    emit_fill(&mut a, COST, 1024, 0x8525_308d, base, moves, pi, tmp);

    a.li(rng, 0x1357_9bdf);
    let outer_top = begin_outer_loop(&mut a, oc, outer);

    a.li(moves, 4096);
    let move_top = a.bind_label();
    emit_xorshift(&mut a, rng, tmp);
    // i = rng & 1023, j = (rng >> 16) & 1023
    a.andi(i_idx, rng, CELLS_MASK);
    a.srli(j_idx, rng, 16);
    a.andi(j_idx, j_idx, CELLS_MASK);
    a.slli(i_idx, i_idx, 3);
    a.slli(j_idx, j_idx, 3);
    // load positions and costs
    a.li(base, POS);
    a.lw_idx(pi, base, i_idx);
    a.lw_idx(pj, base, j_idx);
    a.li(base, COST);
    a.lw_idx(ci, base, i_idx);
    a.lw_idx(cj, base, j_idx);
    // delta = |pi - pj| - |ci - cj| (bounded wire-length proxy)
    a.sub(delta, pi, pj);
    a.srai(tmp, delta, 63);
    a.xor(delta, delta, tmp);
    a.sub(delta, delta, tmp); // |pi - pj|
    a.sub(tmp, ci, cj);
    a.srai(thresh, tmp, 63);
    a.xor(tmp, tmp, thresh);
    a.sub(tmp, tmp, thresh); // |ci - cj|
    a.sub(delta, delta, tmp);
    a.andi(delta, delta, 0xffff);
    // threshold = rng >> 32 & 0xffff (annealing temperature proxy)
    a.srli(thresh, rng, 32);
    a.andi(thresh, thresh, 0xffff);
    let reject = a.label();
    a.bge(delta, thresh, reject); // ~50% data-dependent
                                  // accept: swap positions
    a.li(base, POS);
    a.sw_idx(base, i_idx, pj);
    a.sw_idx(base, j_idx, pi);
    a.addi(acc, acc, 1);
    let next = a.label();
    a.jump(next);
    a.bind(reject);
    a.addi(rej, rej, 1);
    a.bind(next);
    a.addi(moves, moves, -1);
    a.bnez(moves, move_top);

    end_outer_loop(&mut a, oc, outer_top);
    a.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrs_isa::Emulator;

    #[test]
    fn accepts_and_rejects_mix() {
        let mut e = Emulator::new(build(1), 1 << 20);
        for _ in e.by_ref() {}
        let acc = e.int_reg(Reg::new(9));
        let rej = e.int_reg(Reg::new(10));
        assert_eq!(acc + rej, 4096);
        // Both outcomes well represented (the branch is genuinely mixed).
        assert!(acc > 400, "accepts: {acc}");
        assert!(rej > 400, "rejects: {rej}");
    }

    #[test]
    fn swaps_modify_memory() {
        let mut before = Emulator::new(build(1), 1 << 20);
        let init: Vec<u64> = (0..32)
            .map(|i| before.memory().read(POS as u64 + i * 8))
            .collect();
        for _ in before.by_ref() {}
        let after: Vec<u64> = (0..32)
            .map(|i| before.memory().read(POS as u64 + i * 8))
            .collect();
        assert_ne!(init, after);
    }
}
