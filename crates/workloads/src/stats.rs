//! Dynamic-trace statistics: the instruction-mix quantities the paper's
//! analysis leans on (monadic/dyadic fractions, branch density, memory
//! density).

use wsrs_isa::{Arity, DynInst, OpClass};

/// Aggregate statistics of a µop stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceStats {
    /// Total µops measured.
    pub total: u64,
    /// Noadic / monadic / dyadic µop counts (dynamic register arity).
    pub arity: [u64; 3],
    /// Dyadic µops whose opcode commutes mathematically.
    pub commutative_dyadic: u64,
    /// Conditional branches.
    pub cond_branches: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// FP-class µops.
    pub fp_ops: u64,
}

impl TraceStats {
    /// Measures a stream of µops.
    #[must_use]
    pub fn measure(trace: impl Iterator<Item = DynInst>) -> Self {
        let mut s = TraceStats::default();
        for d in trace {
            s.total += 1;
            let idx = match d.arity() {
                Arity::Noadic => 0,
                Arity::Monadic => 1,
                Arity::Dyadic => 2,
            };
            s.arity[idx] += 1;
            if idx == 2 && d.op.is_commutative() {
                s.commutative_dyadic += 1;
            }
            if d.is_cond_branch() {
                s.cond_branches += 1;
            }
            match d.class {
                OpClass::Load => s.loads += 1,
                OpClass::Store => s.stores += 1,
                OpClass::FpAdd | OpClass::FpMul | OpClass::FpDivSqrt | OpClass::FpMove => {
                    s.fp_ops += 1;
                }
                _ => {}
            }
        }
        s
    }

    fn frac(&self, n: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            n as f64 / self.total as f64
        }
    }

    /// Fraction of µops that are monadic (one register operand) — the
    /// paper's key degree of freedom for WSRS allocation.
    #[must_use]
    pub fn monadic_fraction(&self) -> f64 {
        self.frac(self.arity[1])
    }

    /// Fraction of µops that are dyadic.
    #[must_use]
    pub fn dyadic_fraction(&self) -> f64 {
        self.frac(self.arity[2])
    }

    /// Fraction of µops that are conditional branches.
    #[must_use]
    pub fn branch_fraction(&self) -> f64 {
        self.frac(self.cond_branches)
    }

    /// Fraction of µops that touch memory.
    #[must_use]
    pub fn memory_fraction(&self) -> f64 {
        self.frac(self.loads + self.stores)
    }

    /// Fraction of µops that are FP-class.
    #[must_use]
    pub fn fp_fraction(&self) -> f64 {
        self.frac(self.fp_ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn fractions_sum_to_one_over_arities() {
        let s = TraceStats::measure(Workload::Gzip.trace().take(20_000));
        let sum: u64 = s.arity.iter().sum();
        assert_eq!(sum, s.total);
    }

    #[test]
    fn every_kernel_has_monadic_freedom() {
        // §3.3: "a large fraction of the instructions are either monadic or
        // noadic" — each kernel must give the WSRS policies something to
        // work with.
        for w in Workload::all() {
            let s = TraceStats::measure(w.trace().take(30_000));
            let free = s.monadic_fraction() + s.frac(s.arity[0]);
            assert!(free > 0.15, "{w}: only {free:.2} monadic+noadic");
        }
    }

    #[test]
    fn mcf_is_memory_bound_gzip_is_not() {
        let mcf = TraceStats::measure(Workload::Mcf.trace().take(30_000));
        let gzip = TraceStats::measure(Workload::Gzip.trace().take(30_000));
        assert!(mcf.memory_fraction() > gzip.memory_fraction());
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = TraceStats::measure(std::iter::empty());
        assert_eq!(s.total, 0);
        assert_eq!(s.monadic_fraction(), 0.0);
    }
}
