//! Dynamic-trace statistics: the instruction-mix quantities the paper's
//! analysis leans on (monadic/dyadic fractions, branch density, memory
//! density), plus the dependence-distance and register-reuse histograms
//! the `wsrs-workgen` profile extractor consumes.

use wsrs_isa::reg::{NUM_FP_REGS, NUM_INT_REGS};
use wsrs_isa::{Arity, DynInst, OpClass, RegClass};

/// Dependence-distance histogram buckets. Bucket `i` counts source
/// operands whose producing write is at dynamic distance `d` µops with
/// `d <= DEP_DIST_BOUNDS[i]` (and greater than the previous bound):
/// 1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, ≥65.
pub const DEP_DIST_BUCKETS: usize = 8;

/// Upper-inclusive distance bound of each dependence-distance bucket.
pub const DEP_DIST_BOUNDS: [u64; DEP_DIST_BUCKETS] = [1, 2, 4, 8, 16, 32, 64, u64::MAX];

/// Register-reuse histogram buckets. Bucket `i` counts completed register
/// lifetimes (a value overwritten within the window) that were read
/// `n` times with: 0, 1, 2, 3–4, ≥5 reads.
pub const REG_REUSE_BUCKETS: usize = 5;

/// Aggregate statistics of a µop stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceStats {
    /// Total µops measured.
    pub total: u64,
    /// Noadic / monadic / dyadic µop counts (dynamic register arity).
    pub arity: [u64; 3],
    /// Dyadic µops whose opcode commutes mathematically.
    pub commutative_dyadic: u64,
    /// Conditional branches.
    pub cond_branches: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// FP-class µops.
    pub fp_ops: u64,
    /// Dependence-distance histogram over source operands whose producer
    /// executed inside the measured window (see [`DEP_DIST_BOUNDS`]).
    /// Operands fed by pre-window writes are not counted.
    pub dep_dist: [u64; DEP_DIST_BUCKETS],
    /// Register-reuse histogram over completed lifetimes: each time a
    /// register written inside the window is overwritten, the number of
    /// reads its old value received is bucketed. Values still live when
    /// the window ends are not counted.
    pub reg_reuse: [u64; REG_REUSE_BUCKETS],
}

/// Per-register lifetime tracking used while measuring.
#[derive(Clone, Copy)]
struct LiveValue {
    /// Dynamic position (0-based µop index) of the producing write.
    written_at: u64,
    /// Reads this value has received so far.
    reads: u64,
}

/// Flat slot for a class-tagged register (integers first, then FP).
fn reg_slot(r: wsrs_isa::RegRef) -> usize {
    match r.class() {
        RegClass::Int => r.index() as usize,
        RegClass::Fp => NUM_INT_REGS as usize + r.index() as usize,
    }
}

impl TraceStats {
    /// The dependence-distance bucket for a producer→consumer distance of
    /// `d` dynamic µops (`d >= 1`).
    #[must_use]
    pub fn dep_bucket(d: u64) -> usize {
        DEP_DIST_BOUNDS.iter().position(|&b| d <= b).unwrap_or(0)
    }

    /// The register-reuse bucket for a lifetime read `n` times.
    #[must_use]
    pub fn reuse_bucket(n: u64) -> usize {
        match n {
            0 => 0,
            1 => 1,
            2 => 2,
            3..=4 => 3,
            _ => 4,
        }
    }

    /// Measures a stream of µops.
    #[must_use]
    pub fn measure(trace: impl Iterator<Item = DynInst>) -> Self {
        let mut s = TraceStats::default();
        let mut live = [None::<LiveValue>; (NUM_INT_REGS + NUM_FP_REGS) as usize];
        for d in trace {
            let pos = s.total;
            s.total += 1;
            let idx = match d.arity() {
                Arity::Noadic => 0,
                Arity::Monadic => 1,
                Arity::Dyadic => 2,
            };
            s.arity[idx] += 1;
            if idx == 2 && d.op.is_commutative() {
                s.commutative_dyadic += 1;
            }
            if d.is_cond_branch() {
                s.cond_branches += 1;
            }
            match d.class {
                OpClass::Load => s.loads += 1,
                OpClass::Store => s.stores += 1,
                OpClass::FpAdd | OpClass::FpMul | OpClass::FpDivSqrt | OpClass::FpMove => {
                    s.fp_ops += 1;
                }
                _ => {}
            }
            // Sources first (a µop that reads and writes the same register
            // reads the *old* value), then the destination overwrite.
            for src in d.srcs.iter().flatten() {
                if src.is_zero() {
                    continue;
                }
                if let Some(v) = &mut live[reg_slot(*src)] {
                    s.dep_dist[Self::dep_bucket(pos - v.written_at)] += 1;
                    v.reads += 1;
                }
            }
            if let Some(dst) = d.dst {
                if !dst.is_zero() {
                    let slot = &mut live[reg_slot(dst)];
                    if let Some(prev) = slot.replace(LiveValue {
                        written_at: pos,
                        reads: 0,
                    }) {
                        s.reg_reuse[Self::reuse_bucket(prev.reads)] += 1;
                    }
                }
            }
        }
        s
    }

    /// `n / d`, or 0.0 when the denominator is zero — every fraction
    /// accessor routes through here so empty or degenerate windows (no
    /// µops, no dyadic ops, no in-window dependences) report 0.0, never
    /// NaN.
    fn ratio(n: u64, d: u64) -> f64 {
        if d == 0 {
            0.0
        } else {
            n as f64 / d as f64
        }
    }

    fn frac(&self, n: u64) -> f64 {
        Self::ratio(n, self.total)
    }

    /// Fraction of µops that are noadic (no register operands).
    #[must_use]
    pub fn noadic_fraction(&self) -> f64 {
        self.frac(self.arity[0])
    }

    /// Fraction of µops that are monadic (one register operand) — the
    /// paper's key degree of freedom for WSRS allocation.
    #[must_use]
    pub fn monadic_fraction(&self) -> f64 {
        self.frac(self.arity[1])
    }

    /// Fraction of µops that are dyadic.
    #[must_use]
    pub fn dyadic_fraction(&self) -> f64 {
        self.frac(self.arity[2])
    }

    /// Fraction of *dyadic* µops whose opcode commutes — what read
    /// specialization's operand swapping can exploit. 0.0 when the window
    /// has no dyadic µops.
    #[must_use]
    pub fn commutative_fraction(&self) -> f64 {
        Self::ratio(self.commutative_dyadic, self.arity[2])
    }

    /// Fraction of µops that are conditional branches.
    #[must_use]
    pub fn branch_fraction(&self) -> f64 {
        self.frac(self.cond_branches)
    }

    /// Fraction of µops that touch memory.
    #[must_use]
    pub fn memory_fraction(&self) -> f64 {
        self.frac(self.loads + self.stores)
    }

    /// Fraction of µops that are loads.
    #[must_use]
    pub fn load_fraction(&self) -> f64 {
        self.frac(self.loads)
    }

    /// Fraction of µops that are stores.
    #[must_use]
    pub fn store_fraction(&self) -> f64 {
        self.frac(self.stores)
    }

    /// Fraction of µops that are FP-class.
    #[must_use]
    pub fn fp_fraction(&self) -> f64 {
        self.frac(self.fp_ops)
    }

    /// The dependence-distance histogram normalized to fractions of all
    /// in-window dependences. All-zero when the window recorded none.
    #[must_use]
    pub fn dep_dist_fractions(&self) -> [f64; DEP_DIST_BUCKETS] {
        let sum: u64 = self.dep_dist.iter().sum();
        self.dep_dist.map(|n| Self::ratio(n, sum))
    }

    /// The register-reuse histogram normalized to fractions of all
    /// completed lifetimes. All-zero when the window completed none.
    #[must_use]
    pub fn reg_reuse_fractions(&self) -> [f64; REG_REUSE_BUCKETS] {
        let sum: u64 = self.reg_reuse.iter().sum();
        self.reg_reuse.map(|n| Self::ratio(n, sum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn fractions_sum_to_one_over_arities() {
        let s = TraceStats::measure(Workload::Gzip.trace().take(20_000));
        let sum: u64 = s.arity.iter().sum();
        assert_eq!(sum, s.total);
    }

    #[test]
    fn every_kernel_has_monadic_freedom() {
        // §3.3: "a large fraction of the instructions are either monadic or
        // noadic" — each kernel must give the WSRS policies something to
        // work with.
        for w in Workload::all() {
            let s = TraceStats::measure(w.trace().take(30_000));
            let free = s.monadic_fraction() + s.noadic_fraction();
            assert!(free > 0.15, "{w}: only {free:.2} monadic+noadic");
        }
    }

    #[test]
    fn mcf_is_memory_bound_gzip_is_not() {
        let mcf = TraceStats::measure(Workload::Mcf.trace().take(30_000));
        let gzip = TraceStats::measure(Workload::Gzip.trace().take(30_000));
        assert!(mcf.memory_fraction() > gzip.memory_fraction());
    }

    #[test]
    fn empty_trace_is_all_zero_and_never_nan() {
        let s = TraceStats::measure(std::iter::empty());
        assert_eq!(s.total, 0);
        for f in [
            s.noadic_fraction(),
            s.monadic_fraction(),
            s.dyadic_fraction(),
            s.commutative_fraction(),
            s.branch_fraction(),
            s.memory_fraction(),
            s.load_fraction(),
            s.store_fraction(),
            s.fp_fraction(),
        ] {
            assert_eq!(f, 0.0);
        }
        assert_eq!(s.dep_dist_fractions(), [0.0; DEP_DIST_BUCKETS]);
        assert_eq!(s.reg_reuse_fractions(), [0.0; REG_REUSE_BUCKETS]);
    }

    #[test]
    fn degenerate_no_dyadic_window_has_zero_commutative_fraction() {
        use wsrs_isa::{DynInst, Opcode};
        // A single noadic µop: dyadic count is zero, so the commutative
        // fraction must guard the division, not return NaN.
        let s = TraceStats::measure(std::iter::once(DynInst::new(0, Opcode::Add)));
        assert_eq!(s.total, 1);
        assert_eq!(s.commutative_fraction(), 0.0);
    }

    #[test]
    fn dep_buckets_partition_distances() {
        assert_eq!(TraceStats::dep_bucket(1), 0);
        assert_eq!(TraceStats::dep_bucket(2), 1);
        assert_eq!(TraceStats::dep_bucket(3), 2);
        assert_eq!(TraceStats::dep_bucket(4), 2);
        assert_eq!(TraceStats::dep_bucket(5), 3);
        assert_eq!(TraceStats::dep_bucket(64), 6);
        assert_eq!(TraceStats::dep_bucket(65), 7);
        assert_eq!(TraceStats::dep_bucket(u64::MAX), 7);
        assert_eq!(TraceStats::reuse_bucket(0), 0);
        assert_eq!(TraceStats::reuse_bucket(4), 3);
        assert_eq!(TraceStats::reuse_bucket(100), 4);
    }

    #[test]
    fn dep_distances_track_producers() {
        use wsrs_isa::{DynInst, Opcode, Reg};
        // r1 written at pos 0, read at pos 1 (distance 1) and pos 3
        // (distance 3), then overwritten at pos 4 after 2 reads.
        let r1 = Reg::new(1);
        let mut w = DynInst::new(0, Opcode::Li);
        w.dst = Some(r1.into());
        let mut rd = DynInst::new(1, Opcode::Mov);
        rd.srcs[0] = Some(r1.into());
        let noop = DynInst::new(2, Opcode::Li);
        let mut rd2 = DynInst::new(3, Opcode::Mov);
        rd2.srcs[0] = Some(r1.into());
        let mut w2 = DynInst::new(4, Opcode::Li);
        w2.dst = Some(r1.into());
        let s = TraceStats::measure([w, rd, noop, rd2, w2].into_iter());
        assert_eq!(s.dep_dist[TraceStats::dep_bucket(1)], 1);
        assert_eq!(s.dep_dist[TraceStats::dep_bucket(3)], 1);
        assert_eq!(s.dep_dist.iter().sum::<u64>(), 2);
        // One completed lifetime (the pos-0 value), read twice.
        assert_eq!(s.reg_reuse, [0, 0, 1, 0, 0]);
    }

    #[test]
    fn kernel_histograms_are_populated() {
        for w in Workload::all() {
            let s = TraceStats::measure(w.trace().take(30_000));
            assert!(
                s.dep_dist.iter().sum::<u64>() > 1_000,
                "{w}: too few in-window dependences"
            );
            assert!(
                s.reg_reuse.iter().sum::<u64>() > 1_000,
                "{w}: too few completed lifetimes"
            );
            let fr = s.dep_dist_fractions();
            let sum: f64 = fr.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{w}: {sum}");
        }
    }
}
