//! Simulation metrics: IPC, branch behaviour, stall accounting and the
//! paper's *unbalancing degree* (Figure 5).

use wsrs_mem::HierarchyStats;
use wsrs_regfile::RenameStats;
use wsrs_telemetry::CycleAttribution;

/// The paper's workload-balance metric (§5.4): split the dynamic stream
/// into groups of 128 µops; a group is *unbalanced* when any of the four
/// clusters receives fewer than 24 or more than 40 of them. The
/// *unbalancing degree* is the fraction of unbalanced groups.
/// Most execution domains a tracked machine has (4 clusters in the paper;
/// pooled organizations use fewer). Bounding it keeps the per-group
/// counters inline in [`UnbalanceTracker`].
const MAX_CLUSTERS: usize = 8;

#[derive(Clone, Debug)]
pub struct UnbalanceTracker {
    group_size: u64,
    low: u64,
    high: u64,
    /// Only the first `clusters` entries are live; the rest stay zero.
    counts: [u64; MAX_CLUSTERS],
    clusters: usize,
    in_group: u64,
    groups: u64,
    unbalanced: u64,
}

impl UnbalanceTracker {
    /// The paper's parameters: 128-µop groups, unbalanced outside [24, 40].
    #[must_use]
    pub fn paper(clusters: usize) -> Self {
        Self::new(clusters, 128, 24, 40)
    }

    /// A tracker over `clusters` clusters with custom group size/bounds.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero or the bounds are inverted.
    #[must_use]
    pub fn new(clusters: usize, group_size: u64, low: u64, high: u64) -> Self {
        assert!(group_size > 0 && low <= high);
        assert!(clusters <= MAX_CLUSTERS, "too many clusters to track");
        UnbalanceTracker {
            group_size,
            low,
            high,
            counts: [0; MAX_CLUSTERS],
            clusters,
            in_group: 0,
            groups: 0,
            unbalanced: 0,
        }
    }

    /// Records that one µop was allocated to `cluster`.
    pub fn record(&mut self, cluster: usize) {
        debug_assert!(cluster < self.clusters);
        self.counts[cluster] += 1;
        self.in_group += 1;
        if self.in_group == self.group_size {
            self.groups += 1;
            let live = &mut self.counts[..self.clusters];
            if live.iter().any(|&c| c < self.low || c > self.high) {
                self.unbalanced += 1;
            }
            live.iter_mut().for_each(|c| *c = 0);
            self.in_group = 0;
        }
    }

    /// Completed groups.
    #[must_use]
    pub fn groups(&self) -> u64 {
        self.groups
    }

    /// Completed groups flagged as unbalanced.
    #[must_use]
    pub fn unbalanced(&self) -> u64 {
        self.unbalanced
    }

    /// The unbalancing degree in percent (0 when no group completed).
    #[must_use]
    pub fn degree_percent(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            100.0 * self.unbalanced as f64 / self.groups as f64
        }
    }
}

/// Dispatch-stall attribution.
#[derive(Clone, Copy, Debug, Default)]
pub struct StallBreakdown {
    /// Dispatch slots lost to an empty fetch buffer (misprediction
    /// recovery).
    pub frontend: u64,
    /// Dispatch slots lost waiting for a free physical register in the
    /// required subset.
    pub rename: u64,
    /// Dispatch slots lost to a full ROB or full cluster window.
    pub window: u64,
}

/// The result of a simulation run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Retired µops.
    pub uops: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Conditional branches mispredicted.
    pub mispredicts: u64,
    /// Per-cluster dispatched µop counts.
    pub per_cluster: Vec<u64>,
    /// Unbalancing degree in percent (paper Figure 5 metric).
    pub unbalance_percent: f64,
    /// Dispatch-stall attribution.
    pub stalls: StallBreakdown,
    /// Memory-hierarchy counters.
    pub memory: HierarchyStats,
    /// Renamer counters.
    pub rename: RenameStats,
    /// Loads that took their value from an in-flight store.
    pub store_forwards: u64,
    /// Whether the §2.3 rename deadlock was detected (only possible when a
    /// register subset is smaller than the architectural file).
    pub deadlocked: bool,
    /// Deadlock-exception recoveries performed (§2.3 workaround (b);
    /// requires `SimConfig::deadlock_recovery`).
    pub deadlock_recoveries: u64,
    /// µops retired per hardware thread over the **whole** run (length =
    /// `SimConfig::threads`; a single entry on non-SMT machines).
    pub per_thread_uops: Vec<u64>,
    /// Full-pipeline cycle attribution (`Some` iff `SimConfig::telemetry`
    /// was set): every commit-width slot of every measured cycle charged
    /// to exactly one bucket, `sum(buckets) == cycles × width`.
    pub attribution: Option<CycleAttribution>,
}

impl Report {
    /// Retired µops per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.uops as f64 / self.cycles as f64
        }
    }

    /// Misprediction rate over conditional branches.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

impl std::fmt::Display for Report {
    /// A compact human-readable summary:
    ///
    /// ```text
    /// IPC 2.140 (2000000 µops / 934580 cycles) | mispredict 2.8% | unbalance 71.6% | L1 miss 1.2%
    /// ```
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "IPC {:.3} ({} µops / {} cycles) | mispredict {:.1}% | unbalance {:.1}% | L1 miss {:.1}%",
            self.ipc(),
            self.uops,
            self.cycles,
            100.0 * self.mispredict_rate(),
            self.unbalance_percent,
            100.0 * self.memory.l1.miss_rate(),
        )?;
        if self.deadlocked {
            write!(f, " | DEADLOCKED")?;
        }
        if self.deadlock_recoveries > 0 {
            write!(f, " | {} deadlock recoveries", self.deadlock_recoveries)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_display_is_compact_and_total() {
        let r = Report {
            cycles: 100,
            uops: 250,
            branches: 10,
            mispredicts: 1,
            per_cluster: vec![100, 50, 50, 50],
            unbalance_percent: 12.5,
            stalls: StallBreakdown::default(),
            memory: HierarchyStats::default(),
            rename: RenameStats::default(),
            store_forwards: 0,
            deadlocked: true,
            deadlock_recoveries: 2,
            per_thread_uops: vec![250],
            attribution: None,
        };
        let s = r.to_string();
        assert!(s.contains("IPC 2.500"), "{s}");
        assert!(s.contains("DEADLOCKED"));
        assert!(s.contains("2 deadlock recoveries"));
    }

    #[test]
    fn perfectly_balanced_groups() {
        let mut t = UnbalanceTracker::paper(4);
        // strict round-robin: every cluster gets 32 of each 128-group.
        for i in 0..1280 {
            t.record(i % 4);
        }
        assert_eq!(t.groups(), 10);
        assert_eq!(t.degree_percent(), 0.0);
    }

    #[test]
    fn skewed_groups_flagged() {
        let mut t = UnbalanceTracker::paper(4);
        // all µops on cluster 0: every group unbalanced.
        for _ in 0..256 {
            t.record(0);
        }
        assert_eq!(t.groups(), 2);
        assert_eq!(t.degree_percent(), 100.0);
    }

    #[test]
    fn boundary_counts_are_balanced() {
        let mut t = UnbalanceTracker::paper(4);
        // 24/40/40/24 = 128: exactly at the bounds -> balanced.
        for _ in 0..24 {
            t.record(0);
        }
        for _ in 0..40 {
            t.record(1);
        }
        for _ in 0..40 {
            t.record(2);
        }
        for _ in 0..24 {
            t.record(3);
        }
        assert_eq!(t.groups(), 1);
        assert_eq!(t.degree_percent(), 0.0);
    }

    #[test]
    fn just_outside_bounds_is_unbalanced() {
        let mut t = UnbalanceTracker::paper(4);
        // 23/41/40/24 = 128: cluster 0 below 24 -> unbalanced.
        for _ in 0..23 {
            t.record(0);
        }
        for _ in 0..41 {
            t.record(1);
        }
        for _ in 0..40 {
            t.record(2);
        }
        for _ in 0..24 {
            t.record(3);
        }
        assert_eq!(t.degree_percent(), 100.0);
    }

    #[test]
    fn incomplete_group_not_counted() {
        let mut t = UnbalanceTracker::paper(4);
        for _ in 0..100 {
            t.record(0);
        }
        assert_eq!(t.groups(), 0);
        assert_eq!(t.degree_percent(), 0.0);
    }
}
