//! Cluster-allocation policies (paper §3.3, §5.2.1).
//!
//! On a conventional or write-specialized machine the policy is free;
//! the paper uses **round-robin**. On a WSRS machine the operand subsets
//! dictate the cluster: the *first* operand's subset fixes the `f`
//! (top/bottom) coordinate and the *second* operand's subset the `s`
//! (left/right) coordinate. The remaining degrees of freedom are what the
//! policies exploit:
//!
//! * [`AllocPolicy::RandomMonadic`] (`RM`) — monadic instructions use their
//!   operand as the first operand; the free `s` coordinate is chosen at
//!   random. Dyadic instructions are fully constrained.
//! * [`AllocPolicy::RandomCommutative`] (`RC`) — functional units execute
//!   both operand orders (`A-B` and `-A+B`), so *any* dyadic instruction
//!   may swap operands; the form is picked at random, then remaining
//!   freedom at random.
//! * [`AllocPolicy::LoadBalance`] — our implementation of the paper's
//!   §5.4 "future research" direction: like `RC`, but among the eligible
//!   clusters the least-loaded one is chosen instead of a random one.

use crate::cluster::ClusterId;
use crate::config::RegFileMode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsrs_isa::DynInst;
use wsrs_regfile::Subset;

/// Cluster-allocation policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocPolicy {
    /// Round-robin over clusters — the paper's policy for conventional and
    /// write-specialized machines. Not usable with WSRS.
    RoundRobin,
    /// `RM`: random left/right choice for monadic instructions (§5.2.1).
    RandomMonadic,
    /// `RC`: random form selection with "commutative clusters" (§5.2.1).
    RandomCommutative,
    /// Extension: RC's freedom, resolved toward the least-loaded cluster.
    LoadBalance,
    /// Figure 2b: pools of identical functional units — the executing
    /// domain is a pure function of the µop's class (load/store pool,
    /// simple-ALU pool, FP/complex pool, branch pool). Usable with write
    /// specialization, not with WSRS.
    ByKind,
}

impl std::fmt::Display for AllocPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AllocPolicy::RoundRobin => "RR",
            AllocPolicy::RandomMonadic => "RM",
            AllocPolicy::RandomCommutative => "RC",
            AllocPolicy::LoadBalance => "LB",
            AllocPolicy::ByKind => "POOL",
        };
        f.write_str(s)
    }
}

/// The cluster chosen for a µop, and whether its operands were swapped
/// (executed in the inverted form).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ClusterChoice {
    /// Executing cluster.
    pub cluster: ClusterId,
    /// Whether the µop runs in its operand-swapped form.
    pub swapped: bool,
}

/// Stateful allocator: owns the round-robin counter and the policy RNG.
#[derive(Clone, Debug)]
pub struct Allocator {
    policy: AllocPolicy,
    mode: RegFileMode,
    clusters: usize,
    rr_next: usize,
    rng: StdRng,
}

impl Allocator {
    /// Builds an allocator.
    ///
    /// # Panics
    ///
    /// Panics if `RoundRobin` is requested for a WSRS machine (the operand
    /// subsets dictate the cluster there) or a non-4-cluster WSRS geometry
    /// is requested.
    #[must_use]
    pub fn new(policy: AllocPolicy, mode: RegFileMode, clusters: usize, seed: u64) -> Self {
        if mode == RegFileMode::Wsrs {
            assert!(
                !matches!(policy, AllocPolicy::RoundRobin | AllocPolicy::ByKind),
                "{policy} cannot honour WSRS operand constraints"
            );
            assert_eq!(clusters, 4, "WSRS allocation is defined for 4 clusters");
        }
        if policy == AllocPolicy::ByKind {
            assert_eq!(clusters, 4, "the pooled organization has four pools");
        }
        Allocator {
            policy,
            mode,
            clusters,
            rr_next: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The raw state of the policy RNG. The allocator draws exactly once
    /// per µop shape that needs randomness, in rename (= trace) order, so
    /// this single word — restored via [`Allocator::set_rng_state`] —
    /// positions a fresh allocator mid-trace with its remaining draw
    /// sequence identical to one that simulated the whole prefix. (The
    /// round-robin cursor is *not* part of this state; it only advances
    /// under `RoundRobin`, which WSRS rejects, and the sampled path warms
    /// WSRS configurations only.)
    #[must_use]
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Repositions the policy RNG at a state captured by
    /// [`Allocator::rng_state`].
    pub fn set_rng_state(&mut self, state: u64) {
        self.rng = StdRng::from_state(state);
    }

    /// Chooses the executing cluster for `d`. `src_subsets` gives the
    /// current register-file subset of each source operand position
    /// (`None` where the µop has no operand in that position);
    /// `cluster_loads` the current per-cluster in-flight occupancy
    /// (used by [`AllocPolicy::LoadBalance`]).
    pub fn choose(
        &mut self,
        d: &DynInst,
        src_subsets: [Option<Subset>; 2],
        cluster_loads: &[usize],
    ) -> ClusterChoice {
        self.choose_avoiding(d, src_subsets, cluster_loads, None)
    }

    /// Like [`Allocator::choose`], implementing the paper's §2.3 deadlock
    /// workaround (a): when `subset_free` is given (free destination
    /// registers per subset) and the policy has freedom, clusters whose
    /// register subset is exhausted are avoided. Fully-constrained dyadic
    /// µops cannot be redirected — avoidance is best-effort, exactly as the
    /// paper frames it.
    pub fn choose_avoiding(
        &mut self,
        d: &DynInst,
        src_subsets: [Option<Subset>; 2],
        cluster_loads: &[usize],
        subset_free: Option<&[usize]>,
    ) -> ClusterChoice {
        let choice = self.choose_inner(d, src_subsets, cluster_loads);
        let Some(free) = subset_free else {
            return choice;
        };
        if free[choice.cluster.subset().index()] > 0 {
            return choice;
        }
        // The chosen cluster's subset is empty: enumerate the µop's other
        // legal placements and take one with registers, preferring the
        // fullest free list.
        let alternatives = Self::legal_placements(self.policy, src_subsets);
        alternatives
            .into_iter()
            .filter(|c| free[c.cluster.subset().index()] > 0)
            .max_by_key(|c| free[c.cluster.subset().index()])
            .unwrap_or(choice)
    }

    /// All (cluster, swapped) placements legal for a µop with the given
    /// operand subsets under `policy`'s form freedom.
    fn legal_placements(
        policy: AllocPolicy,
        src_subsets: [Option<Subset>; 2],
    ) -> Vec<ClusterChoice> {
        let commutative = matches!(
            policy,
            AllocPolicy::RandomCommutative | AllocPolicy::LoadBalance
        );
        let mut out = Vec::new();
        match (src_subsets[0], src_subsets[1]) {
            (Some(a), Some(b)) => {
                out.push(ClusterChoice {
                    cluster: ClusterId::from_bits(a.f(), b.s()),
                    swapped: false,
                });
                if commutative {
                    out.push(ClusterChoice {
                        cluster: ClusterId::from_bits(b.f(), a.s()),
                        swapped: true,
                    });
                }
            }
            (Some(x), None) | (None, Some(x)) => {
                for s in 0..2u8 {
                    out.push(ClusterChoice {
                        cluster: ClusterId::from_bits(x.f(), s),
                        swapped: false,
                    });
                }
                if commutative {
                    for f in 0..2u8 {
                        out.push(ClusterChoice {
                            cluster: ClusterId::from_bits(f, x.s()),
                            swapped: true,
                        });
                    }
                }
            }
            (None, None) => {
                for c in 0..4u8 {
                    out.push(ClusterChoice {
                        cluster: ClusterId(c),
                        swapped: false,
                    });
                }
            }
        }
        out
    }

    fn choose_inner(
        &mut self,
        d: &DynInst,
        src_subsets: [Option<Subset>; 2],
        cluster_loads: &[usize],
    ) -> ClusterChoice {
        if self.policy == AllocPolicy::ByKind {
            return ClusterChoice {
                cluster: Self::pool_for(d.class),
                swapped: false,
            };
        }
        if self.mode != RegFileMode::Wsrs {
            return self.choose_unconstrained(cluster_loads);
        }
        match (src_subsets[0], src_subsets[1]) {
            (Some(a), Some(b)) => self.choose_dyadic(a, b, cluster_loads),
            (Some(x), None) | (None, Some(x)) => self.choose_monadic(x, cluster_loads),
            (None, None) => {
                let _ = d;
                self.choose_free(cluster_loads)
            }
        }
    }

    /// Pool selection for the Figure 2b organization: P0 load/store,
    /// P1 simple ALUs, P2 FP + complex integer, P3 branches.
    fn pool_for(class: wsrs_isa::OpClass) -> ClusterId {
        use wsrs_isa::OpClass::*;
        match class {
            Load | Store => ClusterId(0),
            IntAlu => ClusterId(1),
            IntMulDiv | FpAdd | FpMul | FpDivSqrt | FpMove => ClusterId(2),
            Branch => ClusterId(3),
        }
    }

    fn choose_unconstrained(&mut self, cluster_loads: &[usize]) -> ClusterChoice {
        let cluster = match self.policy {
            AllocPolicy::RoundRobin => {
                let c = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.clusters;
                ClusterId(c as u8)
            }
            AllocPolicy::LoadBalance => Self::least_loaded(
                (0..self.clusters).map(|c| ClusterId(c as u8)),
                cluster_loads,
            ),
            _ => ClusterId(self.rng.random_range(0..self.clusters) as u8),
        };
        ClusterChoice {
            cluster,
            swapped: false,
        }
    }

    fn choose_dyadic(&mut self, a: Subset, b: Subset, loads: &[usize]) -> ClusterChoice {
        let direct = ClusterId::from_bits(a.f(), b.s());
        let inverted = ClusterId::from_bits(b.f(), a.s());
        match self.policy {
            AllocPolicy::RandomMonadic => ClusterChoice {
                cluster: direct,
                swapped: false,
            },
            AllocPolicy::RandomCommutative => {
                // §5.2.1: the form is first randomly selected.
                if self.rng.random::<bool>() && inverted != direct {
                    ClusterChoice {
                        cluster: inverted,
                        swapped: true,
                    }
                } else {
                    ClusterChoice {
                        cluster: direct,
                        swapped: false,
                    }
                }
            }
            AllocPolicy::LoadBalance => {
                if loads[inverted.0 as usize] < loads[direct.0 as usize] {
                    ClusterChoice {
                        cluster: inverted,
                        swapped: true,
                    }
                } else {
                    ClusterChoice {
                        cluster: direct,
                        swapped: false,
                    }
                }
            }
            AllocPolicy::RoundRobin | AllocPolicy::ByKind => {
                unreachable!("rejected in Allocator::new")
            }
        }
    }

    fn choose_monadic(&mut self, x: Subset, loads: &[usize]) -> ClusterChoice {
        match self.policy {
            AllocPolicy::RandomMonadic => {
                // Operand at the first entry: f is fixed, s is random.
                let s = u8::from(self.rng.random::<bool>());
                ClusterChoice {
                    cluster: ClusterId::from_bits(x.f(), s),
                    swapped: false,
                }
            }
            AllocPolicy::RandomCommutative => {
                // Random form: operand at the first or the second entry,
                // then the free coordinate is random.
                let (cluster, swapped) = if self.rng.random::<bool>() {
                    let s = u8::from(self.rng.random::<bool>());
                    (ClusterId::from_bits(x.f(), s), false)
                } else {
                    let f = u8::from(self.rng.random::<bool>());
                    (ClusterId::from_bits(f, x.s()), true)
                };
                ClusterChoice { cluster, swapped }
            }
            AllocPolicy::LoadBalance => {
                // All clusters reachable with either form: three distinct
                // candidates (paper §3.3, "commutative clusters").
                let candidates = [
                    ClusterId::from_bits(x.f(), 0),
                    ClusterId::from_bits(x.f(), 1),
                    ClusterId::from_bits(0, x.s()),
                    ClusterId::from_bits(1, x.s()),
                ];
                let best = Self::least_loaded(candidates.into_iter(), loads);
                // Swapped iff the operand must sit at the second entry.
                let swapped = best.f() != x.f();
                ClusterChoice {
                    cluster: best,
                    swapped,
                }
            }
            AllocPolicy::RoundRobin | AllocPolicy::ByKind => {
                unreachable!("rejected in Allocator::new")
            }
        }
    }

    fn choose_free(&mut self, loads: &[usize]) -> ClusterChoice {
        let cluster = match self.policy {
            AllocPolicy::LoadBalance => {
                Self::least_loaded((0..self.clusters).map(|c| ClusterId(c as u8)), loads)
            }
            _ => ClusterId(self.rng.random_range(0..self.clusters) as u8),
        };
        ClusterChoice {
            cluster,
            swapped: false,
        }
    }

    fn least_loaded(candidates: impl Iterator<Item = ClusterId>, loads: &[usize]) -> ClusterId {
        candidates
            .min_by_key(|c| loads[c.0 as usize])
            .expect("candidate list never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrs_isa::Opcode;

    fn dyn_inst() -> DynInst {
        DynInst::new(0, Opcode::Add)
    }

    #[test]
    fn round_robin_cycles() {
        let mut a = Allocator::new(AllocPolicy::RoundRobin, RegFileMode::Conventional, 4, 1);
        let loads = [0; 4];
        let seq: Vec<u8> = (0..8)
            .map(|_| a.choose(&dyn_inst(), [None, None], &loads).cluster.0)
            .collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "cannot honour WSRS")]
    fn round_robin_rejected_for_wsrs() {
        let _ = Allocator::new(AllocPolicy::RoundRobin, RegFileMode::Wsrs, 4, 1);
    }

    #[test]
    fn rm_dyadic_is_fully_constrained() {
        let mut a = Allocator::new(AllocPolicy::RandomMonadic, RegFileMode::Wsrs, 4, 1);
        let loads = [0; 4];
        // src0 in S2 (f=1), src1 in S1 (s=1) -> C(1,1) = C3, always.
        for _ in 0..20 {
            let c = a.choose(&dyn_inst(), [Some(Subset(2)), Some(Subset(1))], &loads);
            assert_eq!(c.cluster, ClusterId(3));
            assert!(!c.swapped);
        }
    }

    #[test]
    fn rm_monadic_fixes_f_randomizes_s() {
        let mut a = Allocator::new(AllocPolicy::RandomMonadic, RegFileMode::Wsrs, 4, 42);
        let loads = [0; 4];
        let mut seen = [false; 4];
        for _ in 0..64 {
            let c = a.choose(&dyn_inst(), [Some(Subset(2)), None], &loads);
            assert_eq!(c.cluster.f(), 1, "f fixed by the operand's subset");
            seen[c.cluster.0 as usize] = true;
        }
        assert!(seen[2] && seen[3], "both s choices exercised");
        assert!(!seen[0] && !seen[1]);
    }

    #[test]
    fn rc_dyadic_uses_both_forms() {
        let mut a = Allocator::new(AllocPolicy::RandomCommutative, RegFileMode::Wsrs, 4, 7);
        let loads = [0; 4];
        let mut clusters = [false; 4];
        for _ in 0..64 {
            // src0 in S0 (f=0,s=0), src1 in S3 (f=1,s=1):
            // direct C(0,1)=C1, inverted C(1,0)=C2.
            let c = a.choose(&dyn_inst(), [Some(Subset(0)), Some(Subset(3))], &loads);
            clusters[c.cluster.0 as usize] = true;
            if c.cluster == ClusterId(2) {
                assert!(c.swapped);
            } else {
                assert_eq!(c.cluster, ClusterId(1));
                assert!(!c.swapped);
            }
        }
        assert!(clusters[1] && clusters[2]);
    }

    #[test]
    fn rc_same_subset_operands_cannot_move() {
        let mut a = Allocator::new(AllocPolicy::RandomCommutative, RegFileMode::Wsrs, 4, 9);
        let loads = [0; 4];
        // both operands in S1 (f=0,s=1): direct = inverted = C(0,1) = C1.
        for _ in 0..20 {
            let c = a.choose(&dyn_inst(), [Some(Subset(1)), Some(Subset(1))], &loads);
            assert_eq!(c.cluster, ClusterId(1));
        }
    }

    #[test]
    fn rc_monadic_reaches_three_clusters() {
        let mut a = Allocator::new(AllocPolicy::RandomCommutative, RegFileMode::Wsrs, 4, 11);
        let loads = [0; 4];
        let mut seen = [false; 4];
        for _ in 0..256 {
            // operand in S0 (f=0, s=0): first-entry form reaches C0/C1,
            // second-entry form reaches C0/C2 -> three distinct clusters.
            let c = a.choose(&dyn_inst(), [Some(Subset(0)), None], &loads);
            seen[c.cluster.0 as usize] = true;
        }
        assert_eq!(seen, [true, true, true, false], "C3 is unreachable");
    }

    #[test]
    fn by_kind_routes_by_class() {
        use wsrs_isa::Opcode;
        let mut a = Allocator::new(AllocPolicy::ByKind, RegFileMode::WriteSpecialized, 4, 1);
        let loads = [0; 4];
        let route = |a: &mut Allocator, op: Opcode| {
            let d = DynInst::new(0, op);
            a.choose(&d, [None, None], &loads).cluster.0
        };
        assert_eq!(route(&mut a, Opcode::Lw), 0);
        assert_eq!(route(&mut a, Opcode::Sw), 0);
        assert_eq!(route(&mut a, Opcode::Add), 1);
        assert_eq!(route(&mut a, Opcode::Mul), 2);
        assert_eq!(route(&mut a, Opcode::Fadd), 2);
        assert_eq!(route(&mut a, Opcode::Beq), 3);
        // Pure function: stable across calls, never swapped.
        let d = DynInst::new(0, Opcode::Add);
        let c = a.choose(&d, [Some(Subset(3)), Some(Subset(2))], &loads);
        assert_eq!(c.cluster, ClusterId(1));
        assert!(!c.swapped);
    }

    #[test]
    #[should_panic(expected = "cannot honour WSRS")]
    fn by_kind_rejected_for_wsrs() {
        let _ = Allocator::new(AllocPolicy::ByKind, RegFileMode::Wsrs, 4, 1);
    }

    #[test]
    fn rng_state_restore_replays_the_exact_choice_sequence() {
        let loads = [0; 4];
        let shapes: [[Option<Subset>; 2]; 4] = [
            [Some(Subset(0)), Some(Subset(3))],
            [Some(Subset(2)), None],
            [None, None],
            [None, Some(Subset(1))],
        ];
        let mut a = Allocator::new(AllocPolicy::RandomCommutative, RegFileMode::Wsrs, 4, 0x5eed);
        // Consume a prefix, snapshot, and check a restored allocator
        // continues with the identical draws.
        for i in 0..37 {
            let _ = a.choose(&dyn_inst(), shapes[i % shapes.len()], &loads);
        }
        let mut b = Allocator::new(AllocPolicy::RandomCommutative, RegFileMode::Wsrs, 4, 1);
        b.set_rng_state(a.rng_state());
        for i in 0..200 {
            let shape = shapes[i % shapes.len()];
            assert_eq!(
                a.choose(&dyn_inst(), shape, &loads),
                b.choose(&dyn_inst(), shape, &loads)
            );
        }
    }

    #[test]
    fn load_balance_prefers_idle_cluster() {
        let mut a = Allocator::new(AllocPolicy::LoadBalance, RegFileMode::Wsrs, 4, 3);
        // operand in S0; C1 is busy, C2 idle -> second-entry form lands C2 or C0.
        let loads = [10, 50, 0, 50];
        let c = a.choose(&dyn_inst(), [Some(Subset(0)), None], &loads);
        assert_eq!(c.cluster, ClusterId(2));
        assert!(c.swapped);
    }

    #[test]
    fn noadic_reaches_all_clusters() {
        let mut a = Allocator::new(AllocPolicy::RandomCommutative, RegFileMode::Wsrs, 4, 5);
        let loads = [0; 4];
        let mut seen = [false; 4];
        for _ in 0..128 {
            let c = a.choose(&dyn_inst(), [None, None], &loads);
            seen[c.cluster.0 as usize] = true;
        }
        assert_eq!(seen, [true; 4]);
    }
}
