//! # wsrs-core — the clustered out-of-order timing simulator
//!
//! This crate is the paper's primary artifact: a cycle-level model of an
//! 8-way, 4-cluster dynamically-scheduled superscalar processor that can be
//! configured as
//!
//! * a **conventional** clustered machine (any unit reads/writes any
//!   physical register) with round-robin cluster allocation — the paper's
//!   baseline `RR 256`;
//! * a **register Write Specialized** machine (`WSRR 384/512`, §2): each
//!   cluster writes only its own register-file subset;
//! * a full **WSRS** machine (§3): write *and* read specialization, where
//!   the cluster executing an instruction is dictated by the subsets its
//!   operands live in, under the `RM` / `RC` allocation policies of §5.2.1.
//!
//! The pipeline model follows §5: an idealized 8-µop/cycle front end, a
//! 2Bc-gskew direction predictor with a configuration-dependent minimum
//! misprediction penalty, 2-way-issue clusters (2 ALUs + 1 load/store +
//! 1 FP unit each, 56 in-flight µops per cluster), intra-cluster
//! fast-forwarding with a one-cycle inter-cluster delay, in-order address
//! computation with loads bypassing non-conflicting stores, and the Table 3
//! memory hierarchy.
//!
//! # Example
//!
//! ```
//! use wsrs_core::{SimConfig, Simulator};
//! use wsrs_isa::{Assembler, Emulator, Reg};
//!
//! let mut a = Assembler::new();
//! let (i, n) = (Reg::new(1), Reg::new(2));
//! a.li(i, 0);
//! a.li(n, 1000);
//! let top = a.bind_label();
//! a.addi(i, i, 1);
//! a.blt(i, n, top);
//! a.halt();
//!
//! let report = Simulator::new(SimConfig::conventional_rr(256))
//!     .run(Emulator::new(a.assemble(), 4096));
//! assert!(report.ipc() > 0.5);
//! ```

pub mod alloc;
pub mod batch;
pub mod cluster;
pub mod config;
pub mod metrics;
pub mod pipeview;
pub mod sample;
pub mod sim;
mod slots;
pub mod wheel;

/// Timing-model revision tag. Bump whenever a change can alter any
/// `Report` field for some (config, trace) cell — new timing semantics,
/// bucket accounting, policy RNG usage — so persistently memoized cell
/// results ([`sim_revision`] is one third of `wsrs-serve`'s memo key) are
/// invalidated instead of silently replayed. Pure restructurings that are
/// proven bit-identical (event scheduler, lockstep batching) do NOT bump
/// it.
pub const SIM_REVISION_TAG: &str = "wsrs-sim-v1";

/// FNV-1a digest of [`SIM_REVISION_TAG`] — the simulator-revision
/// component of content-addressed cell-result keys.
#[must_use]
pub fn sim_revision() -> u64 {
    wsrs_isa::fnv1a_64(SIM_REVISION_TAG.as_bytes())
}

/// Environment variable that, when set (`1`/`true`), forces the
/// cycle-by-cycle loop — disabling event-horizon cycle skipping — for
/// A/B wall-clock comparisons. Read once per process.
pub const NO_SKIP_ENV: &str = "WSRS_NO_SKIP";

/// Whether event-horizon cycle skipping is enabled for this process
/// (default yes; `WSRS_NO_SKIP=1` disables it). Skipping is a pure
/// wall-clock optimization — every `Report` is bit-identical either way,
/// enforced by the scan-oracle differential tests — so the flag exists
/// only for timing A/Bs and for exercising the cycle-exact path in CI.
#[must_use]
pub fn skip_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| {
        !std::env::var(NO_SKIP_ENV).is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
    })
}

pub use alloc::{AllocPolicy, ClusterChoice};
pub use batch::{batch_stride, lockstep_compatible, run_lockstep, run_lockstep_with_stride};
pub use cluster::{ClusterId, FuKind, Resources};
pub use config::{FastForward, RegCache, RegFileMode, SimConfig, SimConfigBuilder};
pub use metrics::{Report, UnbalanceTracker};
pub use pipeview::UopTiming;
pub use sample::{
    run_sampled, warm_state_key, NoSampleStore, SampleCheckpoint, SampleSpec, SampleStore,
    SampledReport, SAMPLED_ENV,
};
pub use sim::Simulator;
pub use wheel::CalendarWheel;
