//! Per-µop pipeline timelines — a gem5-`o3pipeview`-style view of the
//! engine's scheduling decisions, for debugging and for *seeing* the WSRS
//! effects (inter-cluster forwarding bubbles, rename stalls, redirect
//! shadows) rather than inferring them from aggregate counters.

use wsrs_isa::Opcode;
use wsrs_telemetry::Json;

/// Lifecycle timestamps of one µop.
#[derive(Clone, Copy, Debug)]
pub struct UopTiming {
    /// Program-order sequence number.
    pub seq: u64,
    /// Static instruction index.
    pub pc: u64,
    /// Opcode.
    pub op: Opcode,
    /// Executing cluster.
    pub cluster: u8,
    /// Cycle fetched.
    pub fetch: u64,
    /// Cycle renamed/dispatched.
    pub dispatch: u64,
    /// Cycle issued to a functional unit.
    pub issue: u64,
    /// Cycle the result became available.
    pub complete: u64,
    /// Cycle retired.
    pub commit: u64,
}

impl UopTiming {
    /// One compact JSON object — a JSON-lines record for scripted
    /// timeline analysis (`wsrs-bench --bin pipeview --json`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seq".into(), Json::UInt(self.seq)),
            ("pc".into(), Json::UInt(self.pc)),
            (
                "op".into(),
                Json::Str(format!("{:?}", self.op).to_lowercase()),
            ),
            ("cluster".into(), Json::UInt(u64::from(self.cluster))),
            ("fetch".into(), Json::UInt(self.fetch)),
            ("dispatch".into(), Json::UInt(self.dispatch)),
            ("issue".into(), Json::UInt(self.issue)),
            ("complete".into(), Json::UInt(self.complete)),
            ("commit".into(), Json::UInt(self.commit)),
        ])
    }
}

/// Renders timelines as an ASCII chart: one row per µop, one column per
/// cycle, with `f`/`d`/`i`/`c`/`r` marking fetch, dispatch, issue,
/// completion and retirement (later events overwrite earlier ones landing
/// on the same cycle).
///
/// Rows are clipped to `max_width` cycles from the first µop's fetch.
#[must_use]
pub fn render(timings: &[UopTiming], max_width: usize) -> String {
    let Some(first) = timings.first() else {
        return String::from("(empty timeline)\n");
    };
    let base = first.fetch;
    let mut out = String::new();
    out.push_str(&format!(
        "{:>5} {:>5} {:<8} {:>2}  cycle {base}..\n",
        "seq", "pc", "op", "cl"
    ));
    for t in timings {
        let mut row = vec![b'.'; max_width];
        let mut mark = |cycle: u64, ch: u8| {
            if cycle >= base {
                let x = (cycle - base) as usize;
                if x < max_width {
                    row[x] = ch;
                }
            }
        };
        mark(t.fetch, b'f');
        mark(t.dispatch, b'd');
        mark(t.issue, b'i');
        mark(t.complete, b'c');
        mark(t.commit, b'r');
        let opname = format!("{:?}", t.op).to_lowercase();
        out.push_str(&format!(
            "{:>5} {:>5} {:<8} {:>2}  {}\n",
            t.seq,
            t.pc,
            opname,
            t.cluster,
            String::from_utf8_lossy(&row)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(seq: u64, fetch: u64, commit: u64) -> UopTiming {
        UopTiming {
            seq,
            pc: seq,
            op: Opcode::Add,
            cluster: 0,
            fetch,
            dispatch: fetch,
            issue: fetch + 1,
            complete: fetch + 2,
            commit,
        }
    }

    #[test]
    fn renders_marks_in_order() {
        let rows = [t(0, 0, 4), t(1, 0, 5)];
        let text = render(&rows, 16);
        let line = text.lines().nth(1).unwrap();
        // dispatch lands on the fetch cycle and overwrites its mark.
        assert!(line.contains("dic.r"), "{line}");
        assert!(text.lines().count() == 3);
    }

    #[test]
    fn clips_to_width() {
        let rows = [t(0, 0, 100)];
        let text = render(&rows, 10);
        // commit at 100 is clipped away; row is exactly 10 cells.
        let line = text.lines().nth(1).unwrap();
        assert!(!line.contains('r'));
    }

    #[test]
    fn empty_timeline() {
        assert_eq!(render(&[], 10), "(empty timeline)\n");
    }

    #[test]
    fn json_record_is_single_line_and_parses() {
        let line = t(3, 5, 9).to_json().to_string_compact();
        assert!(!line.contains('\n'));
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("seq").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("op").and_then(Json::as_str), Some("add"));
        assert_eq!(v.get("commit").and_then(Json::as_u64), Some(9));
    }
}
