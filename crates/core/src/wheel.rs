//! A fixed-horizon calendar wheel for the event scheduler.
//!
//! The event-driven issue path books each µop for the cycle its operands
//! become usable. Almost every booking lands within a small, statically
//! bounded distance of the current cycle (worst-case operand latency plus
//! forwarding), so a ring of `horizon` buckets indexed by `cycle & mask`
//! serves them with no per-event allocation and O(1) schedule/drain. The
//! rare booking beyond the horizon (L2 bus queuing under a miss burst, or
//! stress configurations with inflated penalties) goes to a plain overflow
//! vector that is only scanned once its earliest entry comes due.
//!
//! The wheel requires its user to drain cycles in order — a ring bucket
//! is unambiguous because among the undrained cycles
//! `[base, base + horizon)` no two share an index. The engine's main loop
//! drains one cycle per iteration; the event-horizon fast path may
//! instead ask for the [`CalendarWheel::next_due`] cycle and
//! [`CalendarWheel::advance_to`] it in one jump, which is sound exactly
//! because the skipped-over buckets are provably empty.

/// Seqs a ring bucket stores inline. Sized for the common burst (a
/// dispatch group's worth of same-cycle wakeups); rarer bursts spill to
/// the overflow vector, which handles any due cycle, not only
/// beyond-horizon ones.
const BUCKET_CAP: usize = 8;

/// Calendar wheel: `schedule(due, seq)` then `drain_due(cycle, out)` once
/// per cycle with consecutive `cycle` values.
///
/// Buckets are stored *flat* — `BUCKET_CAP` slots per bucket in one
/// contiguous allocation plus a byte of occupancy each — so schedule and
/// drain touch exactly one line of the slot array and one of the count
/// array, instead of chasing a per-bucket heap pointer that has gone cold
/// by the time its cycle comes around.
#[derive(Clone, Debug)]
pub struct CalendarWheel {
    /// `BUCKET_CAP` inline slots per bucket: bucket `b` owns
    /// `slots[b * BUCKET_CAP ..][..counts[b]]`.
    slots: Vec<u64>,
    /// Occupancy of each bucket's inline slots.
    counts: Vec<u8>,
    horizon: usize,
    mask: u64,
    /// Next cycle to drain; all ring entries are due in
    /// `[base, base + horizon)`.
    base: u64,
    /// Bookings beyond the horizon *or* spilled from a full bucket:
    /// `(due, seq)`, unsorted.
    overflow: Vec<(u64, u64)>,
    /// Earliest due cycle in `overflow` (`u64::MAX` when empty), so the
    /// drain path touches the vector only when something is actually due.
    overflow_min: u64,
    /// Events currently booked (ring + overflow).
    len: usize,
}

impl CalendarWheel {
    /// Creates a wheel with `horizon` ring buckets.
    ///
    /// # Panics
    ///
    /// Panics unless `horizon` is a power of two (ring indexing is a mask).
    #[must_use]
    pub fn new(horizon: usize) -> Self {
        assert!(horizon.is_power_of_two() && horizon >= 2);
        CalendarWheel {
            slots: vec![0; horizon * BUCKET_CAP],
            counts: vec![0; horizon],
            horizon,
            mask: horizon as u64 - 1,
            base: 0,
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            len: 0,
        }
    }

    /// Ring capacity in cycles.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Events booked and not yet drained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no event is booked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Books `seq` for cycle `due`. `due` must not precede the next drain
    /// cycle, or the event would never fire.
    pub fn schedule(&mut self, due: u64, seq: u64) {
        debug_assert!(
            due >= self.base,
            "due {due} before drain base {}",
            self.base
        );
        if due - self.base < self.horizon as u64 {
            let b = (due & self.mask) as usize;
            let n = self.counts[b] as usize;
            if n < BUCKET_CAP {
                self.slots[b * BUCKET_CAP + n] = seq;
                self.counts[b] = n as u8 + 1;
            } else {
                self.overflow.push((due, seq));
                self.overflow_min = self.overflow_min.min(due);
            }
        } else {
            self.overflow.push((due, seq));
            self.overflow_min = self.overflow_min.min(due);
        }
        self.len += 1;
    }

    /// The earliest cycle any booked event is due, or `None` when the
    /// wheel is empty. The ring scan walks occupancy bytes in due order
    /// starting at the next drain cycle and stops at the first hit (or at
    /// `overflow_min`, whichever is earlier), so its cost is bounded by
    /// the distance to the answer — the cycles a caller then skips.
    #[must_use]
    pub fn next_due(&self) -> Option<u64> {
        let due = self.next_due_before(u64::MAX);
        debug_assert_eq!(
            due.is_none(),
            self.len == 0,
            "non-empty wheel must have a due cycle"
        );
        due
    }

    /// The earliest cycle any booked event is due **strictly before**
    /// `limit`, or `None` when nothing is due that early. Identical to
    /// [`CalendarWheel::next_due`] with the occupancy scan truncated at
    /// `limit`: a caller that already holds a tighter bound on how far it
    /// can jump pays at most `limit - base` probes, instead of scanning
    /// all the way out to a next event it could never reach anyway.
    #[must_use]
    pub fn next_due_before(&self, limit: u64) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let mut best = self.overflow_min;
        for off in 0..self.horizon as u64 {
            let due = self.base + off;
            if due >= best || due >= limit {
                break;
            }
            if self.counts[(due & self.mask) as usize] > 0 {
                best = due;
                break;
            }
        }
        (best < limit).then_some(best)
    }

    /// Advances the drain position to `cycle` without draining, for
    /// callers that have proven (via [`CalendarWheel::next_due`]) that no
    /// event is due in `[base, cycle)`. The next [`CalendarWheel::drain_due`]
    /// must then be called with exactly `cycle`.
    pub fn advance_to(&mut self, cycle: u64) {
        debug_assert!(cycle >= self.base, "wheel advanced backwards");
        debug_assert!(
            self.next_due().is_none_or(|d| d >= cycle),
            "skipping over a due event"
        );
        self.base = cycle;
    }

    /// Appends every seq due at exactly `cycle` to `out` and advances the
    /// wheel. Within-cycle order is unspecified — callers that need a
    /// deterministic order must sort. Steady state allocates nothing:
    /// drained buckets keep their capacity.
    pub fn drain_due(&mut self, cycle: u64, out: &mut Vec<u64>) {
        debug_assert_eq!(cycle, self.base, "wheel drained out of order");
        self.base = cycle + 1;
        let b = (cycle & self.mask) as usize;
        let n = std::mem::replace(&mut self.counts[b], 0) as usize;
        if n > 0 {
            self.len -= n;
            out.extend_from_slice(&self.slots[b * BUCKET_CAP..b * BUCKET_CAP + n]);
        }
        if self.overflow_min <= cycle {
            let mut min = u64::MAX;
            let mut k = 0;
            while k < self.overflow.len() {
                let (due, seq) = self.overflow[k];
                if due <= cycle {
                    debug_assert_eq!(due, cycle, "overflow entry missed its cycle");
                    out.push(seq);
                    self.len -= 1;
                    self.overflow.swap_remove(k);
                } else {
                    min = min.min(due);
                    k += 1;
                }
            }
            self.overflow_min = min;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drained(w: &mut CalendarWheel, cycle: u64) -> Vec<u64> {
        let mut out = Vec::new();
        w.drain_due(cycle, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn delivers_at_exact_cycle() {
        let mut w = CalendarWheel::new(8);
        w.schedule(3, 30);
        w.schedule(1, 10);
        w.schedule(3, 31);
        assert_eq!(w.len(), 3);
        assert_eq!(drained(&mut w, 0), vec![]);
        assert_eq!(drained(&mut w, 1), vec![10]);
        assert_eq!(drained(&mut w, 2), vec![]);
        assert_eq!(drained(&mut w, 3), vec![30, 31]);
        assert!(w.is_empty());
    }

    #[test]
    fn ring_wraps_across_many_horizons() {
        let mut w = CalendarWheel::new(4);
        let mut hits = Vec::new();
        for cycle in 0..64 {
            // Book one event `horizon - 1` ahead every cycle.
            w.schedule(cycle + 3, cycle);
            let mut out = Vec::new();
            w.drain_due(cycle, &mut out);
            hits.extend(out);
        }
        // Event booked at cycle c fires at c + 3.
        assert_eq!(hits, (0..61).collect::<Vec<_>>());
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn overflow_round_trips_beyond_horizon() {
        let mut w = CalendarWheel::new(8);
        // Far beyond the 8-cycle horizon: must take the overflow path and
        // still fire at exactly the booked cycle.
        w.schedule(100, 7);
        w.schedule(23, 5);
        w.schedule(2, 1);
        assert_eq!(w.len(), 3);
        let mut fired = Vec::new();
        for cycle in 0..=100 {
            let mut out = Vec::new();
            w.drain_due(cycle, &mut out);
            for seq in out {
                fired.push((cycle, seq));
            }
        }
        assert_eq!(fired, vec![(2, 1), (23, 5), (100, 7)]);
        assert!(w.is_empty());
    }

    #[test]
    fn overflow_and_ring_share_a_cycle() {
        let mut w = CalendarWheel::new(4);
        w.schedule(40, 2); // overflow
        for cycle in 0..38 {
            let mut out = Vec::new();
            w.drain_due(cycle, &mut out);
            assert!(out.is_empty());
        }
        w.schedule(40, 1); // now within the ring
        assert_eq!(drained(&mut w, 38), vec![]);
        assert_eq!(drained(&mut w, 39), vec![]);
        assert_eq!(drained(&mut w, 40), vec![1, 2]);
    }

    #[test]
    fn steady_state_does_not_grow_capacity() {
        let mut w = CalendarWheel::new(8);
        let mut out = Vec::with_capacity(4);
        // Warm one lap of the ring.
        for cycle in 0..8 {
            w.schedule(cycle + 1, cycle);
            out.clear();
            w.drain_due(cycle, &mut out);
        }
        let caps = (w.slots.capacity(), w.overflow.capacity());
        for cycle in 8..80 {
            w.schedule(cycle + 1, cycle);
            out.clear();
            w.drain_due(cycle, &mut out);
        }
        assert_eq!(
            caps,
            (w.slots.capacity(), w.overflow.capacity()),
            "wheel storage must be stable in steady state"
        );
    }

    #[test]
    fn full_bucket_spills_to_overflow_and_still_fires() {
        let mut w = CalendarWheel::new(8);
        // More same-cycle events than one bucket holds inline.
        let n = BUCKET_CAP + 5;
        for seq in 0..n as u64 {
            w.schedule(3, seq);
        }
        assert_eq!(w.len(), n);
        assert_eq!(drained(&mut w, 0), vec![]);
        assert_eq!(drained(&mut w, 1), vec![]);
        assert_eq!(drained(&mut w, 2), vec![]);
        assert_eq!(drained(&mut w, 3), (0..n as u64).collect::<Vec<_>>());
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_horizon_rejected() {
        let _ = CalendarWheel::new(6);
    }

    #[test]
    fn next_due_finds_ring_overflow_and_empty() {
        let mut w = CalendarWheel::new(8);
        assert_eq!(w.next_due(), None);
        w.schedule(5, 50);
        assert_eq!(w.next_due(), Some(5));
        w.schedule(3, 30);
        assert_eq!(w.next_due(), Some(3), "earlier ring booking wins");
        w.schedule(100, 7); // overflow
        assert_eq!(w.next_due(), Some(3));
        let mut out = Vec::new();
        w.drain_due(0, &mut out);
        w.drain_due(1, &mut out);
        w.drain_due(2, &mut out);
        w.drain_due(3, &mut out);
        assert_eq!(out, vec![30]);
        assert_eq!(w.next_due(), Some(5));
        w.drain_due(4, &mut out);
        w.drain_due(5, &mut out);
        assert_eq!(w.next_due(), Some(100), "only the overflow entry left");
    }

    #[test]
    fn advance_to_jumps_over_empty_buckets() {
        let mut w = CalendarWheel::new(8);
        w.schedule(40, 4); // overflow (beyond horizon from base 0)
        assert_eq!(w.next_due(), Some(40));
        w.advance_to(40);
        assert_eq!(drained(&mut w, 40), vec![4]);
        assert!(w.is_empty());
        // Ring bookings survive a jump to exactly their due cycle, and the
        // ring indexing stays consistent after the base moved non-contiguously.
        w.schedule(43, 9);
        w.advance_to(43);
        assert_eq!(drained(&mut w, 43), vec![9]);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn advance_past_due_event_is_rejected() {
        let mut w = CalendarWheel::new(8);
        w.schedule(2, 1);
        w.advance_to(3);
    }
}
