//! Simulator configuration and the paper's named configurations.

use crate::alloc::AllocPolicy;
use crate::cluster::Resources;
use wsrs_frontend::PredictorKind;
use wsrs_mem::HierarchyConfig;
use wsrs_regfile::{RenameStrategy, RenamerConfig};

/// How the physical register file is organized.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegFileMode {
    /// Conventional: any unit reads/writes any register (one subset).
    Conventional,
    /// Register Write Specialization only (§2): cluster `Ci` writes subset
    /// `Si`; reads are unrestricted.
    WriteSpecialized,
    /// Write + Read specialization (§3): writes as above, and the executing
    /// cluster is dictated by the operand subsets.
    Wsrs,
}

/// Fast-forwarding (bypass) reach between clusters (§4.3.1). The paper's
/// performance runs use [`FastForward::IntraCluster`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FastForward {
    /// Same-cycle forwarding inside a cluster only; +1 cycle to any other
    /// cluster (the paper's simulated model, §5.2).
    IntraCluster,
    /// Same-cycle forwarding within a pair of adjacent clusters (same `f`
    /// coordinate); +1 cycle across pairs.
    AdjacentPair,
    /// Complete fast-forwarding: results usable anywhere the next cycle.
    Complete,
}

impl FastForward {
    /// Extra cycles for a value produced on `from` to be consumed on `to`.
    #[must_use]
    pub fn penalty(self, from: u8, to: u8) -> u64 {
        match self {
            FastForward::IntraCluster => u64::from(from != to),
            FastForward::AdjacentPair => u64::from((from >> 1) != (to >> 1)),
            FastForward::Complete => 0,
        }
    }
}

/// Full configuration of the timing simulator.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SimConfig {
    /// Number of execution domains — symmetric clusters, or pools in the
    /// Figure 2b organization (the paper's geometry is 4 either way).
    pub clusters: usize,
    /// Functional-unit complement of each domain. Symmetric machines use
    /// four identical entries; the pooled organization is asymmetric.
    /// Machines with fewer than four domains use a prefix of the array.
    pub resources: [Resources; 4],
    /// In-flight µops per cluster, dispatch to commit (56).
    pub window_per_cluster: usize,
    /// Total in-flight µops (ROB size). The paper's machines hold 224
    /// (4 × 56); the pooled organization keeps the same total while its
    /// per-pool reservation stations are sized by `window_per_cluster`.
    pub rob: usize,
    /// Front-end / commit width in µops per cycle (8).
    pub fetch_width: usize,
    /// Minimum misprediction penalty in cycles (§5.2.1: 17 conventional,
    /// 16 WS, 16/18 WSRS strategy 1/2).
    pub min_mispredict_penalty: u64,
    /// Register-file organization.
    pub mode: RegFileMode,
    /// Cluster allocation policy.
    pub policy: AllocPolicy,
    /// Renamer configuration (subset count must agree with `mode`).
    pub renamer: RenamerConfig,
    /// Data-memory hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Bypass reach.
    pub fast_forward: FastForward,
    /// Conditional-branch direction predictor (the paper uses the
    /// EV8-class 512 Kbit 2Bc-gskew).
    pub predictor: PredictorKind,
    /// Seed for the policy RNG (runs are deterministic).
    pub seed: u64,
    /// Enable the §2.3 deadlock workaround (b): when renaming wedges on an
    /// exhausted register subset with an empty window, raise an exception
    /// that remaps architectural registers out of that subset. Off by
    /// default — the paper's configurations are statically deadlock-free.
    pub deadlock_recovery: bool,
    /// Virtual-physical registers (Monreal et al., the paper's §6 \[13\]):
    /// renaming hands out unbounded *virtual* tags and the physical
    /// register is claimed only at issue, so a register is occupied from
    /// issue to superseding-commit instead of from rename. `Some(n)` caps
    /// each subset at `n` physical registers per class; the renamer's own
    /// budgets then size only the (cheap) virtual tag space. Orthogonal to
    /// write specialization, as the paper observes.
    pub vp_phys_per_subset: Option<usize>,
    /// The §2.3 deadlock workaround (a): the allocation policy avoids
    /// clusters whose register subset is exhausted, whenever the µop has
    /// placement freedom. Best-effort — fully constrained dyadic µops
    /// cannot be redirected. WSRS mode only.
    pub avoid_exhaustion: bool,
    /// Hardware threads (SMT). The paper's §2.3 singles out SMT as the
    /// case where register subsets cannot cover all architectural state;
    /// with 2 threads the machine renames 160 logical integer registers.
    /// Threads share the fetch/dispatch bandwidth (round-robin), the ROB,
    /// the clusters and the physical register file; each has its own map
    /// tables, store queue and memory-order stream.
    pub threads: usize,
    /// Register-file cache (Cruz et al., the paper's §6 \[4\]): recently
    /// produced values read at full speed from a small cached level; older
    /// values come from the slow full copy. The alternative route to a
    /// shorter register-read pipeline that the paper compares itself
    /// against.
    pub reg_cache: Option<RegCache>,
    /// Enable full-pipeline cycle attribution (`wsrs-telemetry`): every
    /// commit-width slot of every cycle is charged to one bucket and the
    /// breakdown is attached to the [`crate::Report`]. Off by default —
    /// the hot loop then pays a single branch per cycle.
    pub telemetry: bool,
}

/// Register-file-cache timing parameters (§6 \[4\]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RegCache {
    /// Cycles after production during which a value reads at cached speed.
    pub retention_cycles: u64,
    /// Extra read latency for values that have aged out to the full copy.
    pub slow_read_penalty: u32,
}

impl SimConfig {
    /// Floating-point physical registers paired with an integer register
    /// budget: the paper sizes only the integer file (256/384/512); we give
    /// the FP file half that, as FP codes have 32 logical FP registers
    /// against 80 integer ones (documented in `DESIGN.md`).
    #[must_use]
    pub fn fp_regs_for(int_regs: usize) -> usize {
        int_regs / 2
    }

    /// The paper's baseline: conventional 4-cluster, round-robin
    /// allocation, 256 integer registers, 17-cycle minimum misprediction
    /// penalty (`RR 256`).
    #[must_use]
    pub fn conventional_rr(int_regs: usize) -> Self {
        SimConfig {
            clusters: 4,
            window_per_cluster: 56,
            rob: 224,
            fetch_width: 8,
            min_mispredict_penalty: 17,
            mode: RegFileMode::Conventional,
            policy: AllocPolicy::RoundRobin,
            resources: [Resources::ev6_cluster(); 4],
            renamer: RenamerConfig::conventional(int_regs, Self::fp_regs_for(int_regs)),
            hierarchy: HierarchyConfig::paper(),
            fast_forward: FastForward::IntraCluster,
            predictor: PredictorKind::TwoBcGskew512K,
            seed: 0x5eed,
            deadlock_recovery: false,
            threads: 1,
            vp_phys_per_subset: None,
            avoid_exhaustion: false,
            reg_cache: None,
            telemetry: false,
        }
    }

    /// A conventional machine with a register-file cache (§6 \[4\]): one
    /// register-read stage saved (16-cycle penalty, like WS), paid for by
    /// slow reads of values older than the cache's retention window.
    #[must_use]
    pub fn conventional_reg_cache(int_regs: usize, cache: RegCache) -> Self {
        SimConfig {
            min_mispredict_penalty: 16,
            reg_cache: Some(cache),
            ..Self::conventional_rr(int_regs)
        }
    }

    /// The monolithic 8-way machine of Figure 1a (`noWS-M`): one domain
    /// holding every functional unit, complete bypass, single register
    /// subset. Baseline for the pooled organization.
    #[must_use]
    pub fn monolithic(int_regs: usize) -> Self {
        SimConfig {
            clusters: 1,
            window_per_cluster: 224,
            resources: [Resources::monolithic_8way(); 4],
            fast_forward: FastForward::Complete,
            ..Self::conventional_rr(int_regs)
        }
    }

    /// Register write specialization over **pools of functional units**
    /// (Figure 2b): load/store units, simple ALUs, FP/complex units and
    /// branch units each form a pool writing its own register subset.
    /// Pool selection is a pure function of the opcode, known at decode
    /// (predecoded in the instruction cache, §2.4), so the renaming
    /// pipeline is not lengthened and the one-cycle register-read saving
    /// applies as for clustered WS.
    #[must_use]
    pub fn pooled_write_specialized(int_regs: usize, strategy: RenameStrategy) -> Self {
        let none = Resources {
            issue_width: 0,
            alus: 0,
            ldsts: 0,
            fps: 0,
            muldivs: 0,
            fpdivs: 0,
        };
        SimConfig {
            clusters: 4,
            // Per-pool reservation stations sized so the shared 224-entry
            // ROB is the binding window, as on the monolithic baseline.
            window_per_cluster: 224,
            min_mispredict_penalty: 16,
            mode: RegFileMode::WriteSpecialized,
            policy: AllocPolicy::ByKind,
            resources: [
                // S0: load/store pool
                Resources {
                    issue_width: 4,
                    ldsts: 4,
                    ..none
                },
                // S1: simple-ALU pool
                Resources {
                    issue_width: 8,
                    alus: 8,
                    ..none
                },
                // S2: FP + complex-integer pool
                Resources {
                    issue_width: 4,
                    fps: 4,
                    alus: 4, // ALUs hosting the mul/div structures
                    muldivs: 4,
                    fpdivs: 4,
                    ..none
                },
                // S3: branch pool
                Resources {
                    issue_width: 2,
                    alus: 2,
                    ..none
                },
            ],
            renamer: RenamerConfig::write_specialized(
                int_regs,
                Self::fp_regs_for(int_regs),
                strategy,
            ),
            // Pools live in one spatial domain: complete forwarding, like
            // the monolithic baseline they are compared against.
            fast_forward: FastForward::Complete,
            ..Self::conventional_rr(int_regs)
        }
    }

    /// Register write specialization only, round-robin allocation
    /// (`WSRR 384` / `WSRR 512`). One cycle saved on the register-read
    /// pipeline → 16-cycle minimum penalty (§5.2.1); no extra rename stages
    /// for a static policy (§2.4).
    #[must_use]
    pub fn write_specialized_rr(int_regs: usize, strategy: RenameStrategy) -> Self {
        SimConfig {
            min_mispredict_penalty: 16,
            mode: RegFileMode::WriteSpecialized,
            policy: AllocPolicy::RoundRobin,
            renamer: RenamerConfig::write_specialized(
                int_regs,
                Self::fp_regs_for(int_regs),
                strategy,
            ),
            ..Self::conventional_rr(int_regs)
        }
    }

    /// Full WSRS (`WSRS RM/RC S 384/512`). The minimum misprediction
    /// penalty accounts for the renaming-strategy pipeline: two cycles
    /// saved on register read, plus 1 (strategy 1) or 3 (strategy 2) extra
    /// front-end stages → 16 or 18 cycles (§5.2.1).
    #[must_use]
    pub fn wsrs(int_regs: usize, policy: AllocPolicy, strategy: RenameStrategy) -> Self {
        let penalty = match strategy {
            RenameStrategy::Recycling => 16,
            RenameStrategy::ExactCount => 18,
        };
        SimConfig {
            min_mispredict_penalty: penalty,
            mode: RegFileMode::Wsrs,
            policy,
            renamer: RenamerConfig::write_specialized(
                int_regs,
                Self::fp_regs_for(int_regs),
                strategy,
            ),
            ..Self::conventional_rr(int_regs)
        }
    }

    /// Total in-flight window (ROB) size.
    #[must_use]
    pub fn rob_size(&self) -> usize {
        self.rob
    }

    /// Ring size (in cycles) for the event scheduler's calendar wheel: the
    /// worst deterministically-bounded operand delay this configuration can
    /// book — a load missing both cache levels on top of the L1 hit
    /// pipeline and a port-contention slip (or the longest functional-unit
    /// latency, whichever is larger), plus the register-cache slow-read
    /// penalty, the inter-cluster forwarding bubble and the one-cycle
    /// writeback→use gap — rounded up to a power of two for mask indexing.
    /// L2 bus queuing under a miss burst is unbounded, and stress
    /// configurations may inflate penalties past the 1024-bucket cap;
    /// those rare bookings take the wheel's overflow path.
    #[must_use]
    pub fn scheduler_horizon(&self) -> usize {
        use wsrs_isa::latency;
        let miss_path = self.hierarchy.l1.hit_latency
            + 1 // port-contention slip
            + self.hierarchy.l1_miss_penalty
            + self.hierarchy.l2_miss_penalty;
        let unit = latency::MULDIV_LATENCY.max(latency::FP_DIV_SQRT_LATENCY);
        let slow_read = self.reg_cache.map_or(0, |rc| rc.slow_read_penalty);
        let worst = miss_path.max(unit) + slow_read + 2;
        (worst as usize).next_power_of_two().clamp(64, 1024)
    }

    /// Canonical content hash of this configuration: a stable
    /// field-order FNV-1a digest covering **every timing-relevant field**
    /// (two configurations compare equal iff their hashes match, up to
    /// FNV collisions). Unlike the `Debug`-rendering fingerprint in run
    /// manifests, the field order and encoding here are explicit and
    /// versioned (`wsrs-simconfig-v1`), so the digest is safe to use as a
    /// persistent cache key — `wsrs-serve` keys its memoized cell results
    /// on (this hash, trace checksum, [`crate::sim_revision`]).
    ///
    /// Adding a field to [`SimConfig`] must extend this digest; the
    /// `content_hash_covers_every_field` test enumerates one mutation per
    /// field and fails when a new field is left out of the hash.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut h = wsrs_isa::Fnv1a::new();
        h.write(b"wsrs-simconfig-v1;");
        h.write_u64(self.clusters as u64);
        for r in &self.resources {
            h.write_u64(u64::from(r.issue_width));
            h.write_u64(u64::from(r.alus));
            h.write_u64(u64::from(r.ldsts));
            h.write_u64(u64::from(r.fps));
            h.write_u64(u64::from(r.muldivs));
            h.write_u64(u64::from(r.fpdivs));
        }
        h.write_u64(self.window_per_cluster as u64);
        h.write_u64(self.rob as u64);
        h.write_u64(self.fetch_width as u64);
        h.write_u64(self.min_mispredict_penalty);
        h.write_u8(match self.mode {
            RegFileMode::Conventional => 0,
            RegFileMode::WriteSpecialized => 1,
            RegFileMode::Wsrs => 2,
        });
        h.write_u8(match self.policy {
            AllocPolicy::RoundRobin => 0,
            AllocPolicy::RandomMonadic => 1,
            AllocPolicy::RandomCommutative => 2,
            AllocPolicy::LoadBalance => 3,
            AllocPolicy::ByKind => 4,
        });
        h.write_u64(self.renamer.subsets as u64);
        h.write_u64(self.renamer.int_regs as u64);
        h.write_u64(self.renamer.fp_regs as u64);
        h.write_u8(match self.renamer.strategy {
            RenameStrategy::Recycling => 0,
            RenameStrategy::ExactCount => 1,
        });
        h.write_u64(self.renamer.recycle_delay);
        h.write_u64(self.renamer.rename_width as u64);
        h.write_u64(self.renamer.threads as u64);
        for c in [self.hierarchy.l1, self.hierarchy.l2] {
            h.write_u64(c.size_bytes as u64);
            h.write_u64(c.line_bytes as u64);
            h.write_u64(c.associativity as u64);
            h.write_u64(u64::from(c.hit_latency));
        }
        h.write_u64(u64::from(self.hierarchy.l1_miss_penalty));
        h.write_u64(u64::from(self.hierarchy.l2_miss_penalty));
        h.write_u64(u64::from(self.hierarchy.l1_ports_per_cycle));
        h.write_u64(u64::from(self.hierarchy.l2_bytes_per_cycle));
        h.write_u8(match self.fast_forward {
            FastForward::IntraCluster => 0,
            FastForward::AdjacentPair => 1,
            FastForward::Complete => 2,
        });
        h.write_u8(match self.predictor {
            wsrs_frontend::PredictorKind::TwoBcGskew512K => 0,
            wsrs_frontend::PredictorKind::Gshare64K => 1,
            wsrs_frontend::PredictorKind::Bimodal64K => 2,
            wsrs_frontend::PredictorKind::AlwaysTaken => 3,
            wsrs_frontend::PredictorKind::Perfect => 4,
        });
        h.write_u64(self.seed);
        h.write_u8(u8::from(self.deadlock_recovery));
        // Options hash a presence byte so `None` can never alias a value.
        h.write_u8(u8::from(self.vp_phys_per_subset.is_some()));
        h.write_u64(self.vp_phys_per_subset.unwrap_or(0) as u64);
        h.write_u8(u8::from(self.avoid_exhaustion));
        h.write_u64(self.threads as u64);
        h.write_u8(u8::from(self.reg_cache.is_some()));
        let rc = self.reg_cache.unwrap_or(RegCache {
            retention_cycles: 0,
            slow_read_penalty: 0,
        });
        h.write_u64(rc.retention_cycles);
        h.write_u64(u64::from(rc.slow_read_penalty));
        h.write_u8(u8::from(self.telemetry));
        h.finish()
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the mode and renamer subset count disagree, or the
    /// geometry is degenerate.
    pub fn validate(&self) {
        assert!(self.clusters.is_power_of_two() && self.clusters >= 1);
        match self.mode {
            RegFileMode::Conventional => assert_eq!(self.renamer.subsets, 1),
            RegFileMode::WriteSpecialized | RegFileMode::Wsrs => {
                assert_eq!(self.renamer.subsets, self.clusters);
            }
        }
        assert!(self.fetch_width >= 1);
        assert!(self.rob >= self.fetch_width);
        assert!(self.threads >= 1);
        assert_eq!(
            self.threads, self.renamer.threads,
            "SMT thread count must match the renamer's map-table count"
        );
        if let Some(cap) = self.vp_phys_per_subset {
            // Each subset must hold its share of architectural state plus
            // the one register reserved for the oldest waiting µop.
            assert!(
                cap > 80usize.div_ceil(self.renamer.subsets),
                "virtual-physical capacity too small for architectural state"
            );
        }
        assert!(self.rob <= self.clusters * self.window_per_cluster);
        assert!(self.resources[..self.clusters.min(4)]
            .iter()
            .all(|r| r.issue_width >= 1));
    }
}

/// Builder for customized [`SimConfig`]s, starting from any preset.
///
/// # Example
///
/// ```
/// use wsrs_core::{AllocPolicy, SimConfig, SimConfigBuilder, FastForward};
/// use wsrs_regfile::RenameStrategy;
///
/// let cfg = SimConfigBuilder::from(SimConfig::wsrs(
///         512, AllocPolicy::RandomCommutative, RenameStrategy::ExactCount))
///     .fast_forward(FastForward::AdjacentPair)
///     .seed(42)
///     .mispredict_penalty(20)
///     .deadlock_recovery(true)
///     .build();
/// assert_eq!(cfg.seed, 42);
/// ```
#[derive(Clone, Debug)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl From<SimConfig> for SimConfigBuilder {
    fn from(cfg: SimConfig) -> Self {
        SimConfigBuilder { cfg }
    }
}

impl SimConfigBuilder {
    /// Starts from the conventional round-robin baseline.
    #[must_use]
    pub fn conventional(int_regs: usize) -> Self {
        SimConfig::conventional_rr(int_regs).into()
    }

    /// Sets the policy RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the bypass reach.
    pub fn fast_forward(&mut self, ff: FastForward) -> &mut Self {
        self.cfg.fast_forward = ff;
        self
    }

    /// Sets the minimum misprediction penalty in cycles.
    pub fn mispredict_penalty(&mut self, cycles: u64) -> &mut Self {
        self.cfg.min_mispredict_penalty = cycles;
        self
    }

    /// Sets the memory hierarchy.
    pub fn hierarchy(&mut self, h: HierarchyConfig) -> &mut Self {
        self.cfg.hierarchy = h;
        self
    }

    /// Overrides the integer/FP physical register budgets.
    pub fn registers(&mut self, int_regs: usize, fp_regs: usize) -> &mut Self {
        self.cfg.renamer.int_regs = int_regs;
        self.cfg.renamer.fp_regs = fp_regs;
        self
    }

    /// Sets the cluster allocation policy.
    pub fn policy(&mut self, policy: AllocPolicy) -> &mut Self {
        self.cfg.policy = policy;
        self
    }

    /// Sets the per-cluster in-flight window and total ROB size together.
    pub fn window(&mut self, per_cluster: usize, rob: usize) -> &mut Self {
        self.cfg.window_per_cluster = per_cluster;
        self.cfg.rob = rob;
        self
    }

    /// Enables the §2.3 deadlock-recovery exception.
    pub fn deadlock_recovery(&mut self, on: bool) -> &mut Self {
        self.cfg.deadlock_recovery = on;
        self
    }

    /// Sets the conditional-branch direction predictor.
    pub fn predictor(&mut self, kind: PredictorKind) -> &mut Self {
        self.cfg.predictor = kind;
        self
    }

    /// Configures `n` hardware threads (SMT); keeps the renamer's map-table
    /// count in sync.
    pub fn threads(&mut self, n: usize) -> &mut Self {
        self.cfg.threads = n;
        self.cfg.renamer.threads = n;
        self
    }

    /// Enables the §2.3 workaround (a): exhaustion-avoiding allocation.
    pub fn avoid_exhaustion(&mut self, on: bool) -> &mut Self {
        self.cfg.avoid_exhaustion = on;
        self
    }

    /// Enables full-pipeline cycle attribution (see `wsrs-telemetry`).
    pub fn telemetry(&mut self, on: bool) -> &mut Self {
        self.cfg.telemetry = on;
        self
    }

    /// Enables virtual-physical registers with `per_subset` physical
    /// registers per class and subset. The renamer's budgets are switched
    /// to a large virtual tag space (4096 tags per subset per class).
    pub fn virtual_physical(&mut self, per_subset: usize) -> &mut Self {
        self.cfg.vp_phys_per_subset = Some(per_subset);
        let subsets = self.cfg.renamer.subsets;
        self.cfg.renamer.int_regs = 4096 * subsets;
        self.cfg.renamer.fp_regs = 4096 * subsets;
        self
    }

    /// Finishes, validating the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// (see [`SimConfig::validate`]).
    #[must_use]
    pub fn build(&self) -> SimConfig {
        self.cfg.validate();
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_and_validates() {
        let cfg = SimConfigBuilder::conventional(256)
            .seed(7)
            .mispredict_penalty(12)
            .registers(320, 160)
            .window(56, 200)
            .build();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.min_mispredict_penalty, 12);
        assert_eq!(cfg.renamer.int_regs, 320);
        assert_eq!(cfg.rob_size(), 200);
    }

    #[test]
    #[should_panic]
    fn builder_rejects_inconsistent_window() {
        let _ = SimConfigBuilder::conventional(256).window(10, 200).build();
    }

    #[test]
    fn paper_penalties() {
        assert_eq!(SimConfig::conventional_rr(256).min_mispredict_penalty, 17);
        assert_eq!(
            SimConfig::write_specialized_rr(384, RenameStrategy::ExactCount).min_mispredict_penalty,
            16
        );
        assert_eq!(
            SimConfig::wsrs(
                512,
                AllocPolicy::RandomCommutative,
                RenameStrategy::Recycling
            )
            .min_mispredict_penalty,
            16
        );
        assert_eq!(
            SimConfig::wsrs(
                512,
                AllocPolicy::RandomCommutative,
                RenameStrategy::ExactCount
            )
            .min_mispredict_penalty,
            18
        );
    }

    #[test]
    fn geometry_matches_paper() {
        let c = SimConfig::conventional_rr(256);
        assert_eq!(c.rob_size(), 224);
        c.validate();
        SimConfig::wsrs(384, AllocPolicy::RandomMonadic, RenameStrategy::ExactCount).validate();
    }

    #[test]
    fn monolithic_and_pooled_presets_validate() {
        let m = SimConfig::monolithic(256);
        m.validate();
        assert_eq!(m.clusters, 1);
        assert_eq!(m.rob_size(), 224);
        assert_eq!(m.resources[0].issue_width, 8);

        let p = SimConfig::pooled_write_specialized(512, RenameStrategy::ExactCount);
        p.validate();
        assert_eq!(p.clusters, 4);
        assert_eq!(p.rob_size(), 224);
        // Total functional units match the 4-cluster machine.
        let total_alus: u32 = p.resources.iter().map(|r| r.alus).sum();
        let total_ldst: u32 = p.resources.iter().map(|r| r.ldsts).sum();
        let total_fp: u32 = p.resources.iter().map(|r| r.fps).sum();
        assert!(total_alus >= 8);
        assert_eq!(total_ldst, 4);
        assert_eq!(total_fp, 4);
        assert_eq!(p.min_mispredict_penalty, 16, "WS saves one read stage");
    }

    #[test]
    fn fast_forward_penalties() {
        let ff = FastForward::IntraCluster;
        assert_eq!(ff.penalty(0, 0), 0);
        assert_eq!(ff.penalty(0, 3), 1);
        let pair = FastForward::AdjacentPair;
        assert_eq!(pair.penalty(0, 1), 0, "C0,C1 share f=0");
        assert_eq!(pair.penalty(0, 2), 1);
        assert_eq!(FastForward::Complete.penalty(0, 3), 0);
    }

    #[test]
    #[should_panic]
    fn inconsistent_mode_panics() {
        let mut c = SimConfig::conventional_rr(256);
        c.mode = RegFileMode::Wsrs;
        c.validate();
    }

    /// One mutation per [`SimConfig`] field (including every nested
    /// field), asserting each changes the content hash. A new field left
    /// out of [`SimConfig::content_hash`] shows up here as soon as a
    /// mutator for it is added — and the struct-literal exhaustiveness of
    /// `field_mutations` forces that addition at compile time for flat
    /// fields.
    fn field_mutations() -> Vec<(&'static str, SimConfig)> {
        use wsrs_frontend::PredictorKind;
        let b = SimConfig::conventional_rr(256);
        let mut out: Vec<(&'static str, SimConfig)> = Vec::new();
        let mut push = |name, f: &dyn Fn(&mut SimConfig)| {
            let mut c = b;
            f(&mut c);
            out.push((name, c));
        };
        push("clusters", &|c| c.clusters += 1);
        push("resources.issue_width", &|c| {
            c.resources[1].issue_width += 1;
        });
        push("resources.alus", &|c| c.resources[2].alus += 1);
        push("resources.ldsts", &|c| c.resources[0].ldsts += 1);
        push("resources.fps", &|c| c.resources[3].fps += 1);
        push("resources.muldivs", &|c| c.resources[0].muldivs += 1);
        push("resources.fpdivs", &|c| c.resources[0].fpdivs += 1);
        push("window_per_cluster", &|c| c.window_per_cluster += 1);
        push("rob", &|c| c.rob += 1);
        push("fetch_width", &|c| c.fetch_width += 1);
        push("min_mispredict_penalty", &|c| {
            c.min_mispredict_penalty += 1;
        });
        push("mode", &|c| c.mode = RegFileMode::WriteSpecialized);
        push("policy", &|c| c.policy = AllocPolicy::LoadBalance);
        push("renamer.subsets", &|c| c.renamer.subsets += 1);
        push("renamer.int_regs", &|c| c.renamer.int_regs += 1);
        push("renamer.fp_regs", &|c| c.renamer.fp_regs += 1);
        push("renamer.strategy", &|c| {
            c.renamer.strategy = RenameStrategy::Recycling;
        });
        push("renamer.recycle_delay", &|c| c.renamer.recycle_delay += 1);
        push("renamer.rename_width", &|c| c.renamer.rename_width += 1);
        push("renamer.threads", &|c| c.renamer.threads += 1);
        push("hierarchy.l1.size_bytes", &|c| {
            c.hierarchy.l1.size_bytes *= 2;
        });
        push("hierarchy.l1.line_bytes", &|c| {
            c.hierarchy.l1.line_bytes *= 2;
        });
        push("hierarchy.l1.associativity", &|c| {
            c.hierarchy.l1.associativity += 1;
        });
        push("hierarchy.l1.hit_latency", &|c| {
            c.hierarchy.l1.hit_latency += 1;
        });
        push("hierarchy.l2.size_bytes", &|c| {
            c.hierarchy.l2.size_bytes *= 2;
        });
        push("hierarchy.l1_miss_penalty", &|c| {
            c.hierarchy.l1_miss_penalty += 1;
        });
        push("hierarchy.l2_miss_penalty", &|c| {
            c.hierarchy.l2_miss_penalty += 1;
        });
        push("hierarchy.l1_ports_per_cycle", &|c| {
            c.hierarchy.l1_ports_per_cycle += 1;
        });
        push("hierarchy.l2_bytes_per_cycle", &|c| {
            c.hierarchy.l2_bytes_per_cycle += 1;
        });
        push("fast_forward", &|c| {
            c.fast_forward = FastForward::Complete;
        });
        push("predictor", &|c| c.predictor = PredictorKind::Gshare64K);
        push("seed", &|c| c.seed ^= 1);
        push("deadlock_recovery", &|c| c.deadlock_recovery = true);
        push("vp_phys_per_subset", &|c| {
            c.vp_phys_per_subset = Some(96);
        });
        push("avoid_exhaustion", &|c| c.avoid_exhaustion = true);
        push("threads", &|c| c.threads += 1);
        push("reg_cache", &|c| {
            c.reg_cache = Some(RegCache {
                retention_cycles: 4,
                slow_read_penalty: 1,
            });
        });
        push("reg_cache.retention_cycles", &|c| {
            c.reg_cache = Some(RegCache {
                retention_cycles: 5,
                slow_read_penalty: 1,
            });
        });
        push("telemetry", &|c| c.telemetry = true);
        out
    }

    #[test]
    fn content_hash_covers_every_field() {
        let base = SimConfig::conventional_rr(256);
        assert_eq!(base.content_hash(), base.content_hash(), "stable");
        let muts = field_mutations();
        for (name, m) in &muts {
            assert_ne!(*m, base, "{name}: mutation must change the config");
            assert_ne!(
                m.content_hash(),
                base.content_hash(),
                "{name}: field is not covered by content_hash"
            );
        }
        // Distinct mutations must not collide with each other either.
        for (i, (na, a)) in muts.iter().enumerate() {
            for (nb, b) in &muts[i + 1..] {
                assert_ne!(
                    a.content_hash(),
                    b.content_hash(),
                    "collision between {na} and {nb}"
                );
            }
        }
    }

    #[test]
    fn content_hash_none_does_not_alias_zero_value() {
        let base = SimConfig::conventional_rr(256);
        let mut zeroed = base;
        zeroed.reg_cache = Some(RegCache {
            retention_cycles: 0,
            slow_read_penalty: 0,
        });
        assert_ne!(base.content_hash(), zeroed.content_hash());
    }
}
