//! Batched lockstep simulation: N configurations of the *same* workload
//! advance in coarse lockstep over one shared, pre-annotated trace.
//!
//! Grid columns (figure 4/5, pools, ablations) replay one workload trace
//! through a family of sibling configurations. Run scalar, every cell
//! re-walks the trace and re-runs the direction predictor — per-µop work
//! that depends only on *trace order*, never on any machine's timing.
//! The batched path hoists it: [`annotate`] runs the family's predictor
//! once over the shared trace, recording per-µop `(cond_branch,
//! mispredicted)` outcomes, and each lane's fetch replays those flags
//! instead of predicting. Lane timing state stays fully independent —
//! each lane owns its engine ([`crate::slots::Rob`] lanes keyed by
//! `(config_lane, seq)`, its own `CalendarWheel` and waiter lists) — so
//! every lane's [`Report`] is bit-identical to its scalar run; the
//! lockstep differential fuzz in `tests/proptest_scheduler.rs` enforces
//! exactly that.
//!
//! The hoisting is sound because prediction is a pure function of the
//! trace prefix: the engine consults the predictor for every conditional
//! branch in fetch (= trace) order, timing never feeds back into it, and
//! the engine's exit condition guarantees every µop of the bounded trace
//! is eventually fetched. Lanes at different IPC sit at different trace
//! positions, but each position's annotation is the same for all of them.

use crate::config::SimConfig;
use crate::metrics::Report;
use crate::sim::{predict_uop, AnnUop, Engine, FetchStream};
use wsrs_frontend::PredictorKind;
use wsrs_isa::DynInst;

/// Per-µop annotation flag: the µop is a conditional branch.
const A_COND: u8 = 1 << 0;
/// Per-µop annotation flag: the family predictor mispredicted it.
const A_MISP: u8 = 1 << 1;

/// Default sweep block, in cycles per lane per round-robin turn. Sized so
/// a lane's working set (SoA ROB, wheel, rename state) stays hot in cache
/// for its whole slice instead of being evicted by its siblings every
/// cycle, while lanes still walk the same region of the shared annotated
/// trace within a sweep or two of each other.
const DEFAULT_STRIDE: u32 = 8192;

/// Environment variable overriding the lockstep sweep block
/// ([`batch_stride`]). Reports are stride-invariant — lanes share nothing
/// mutable — so this is a pure cache-tuning knob.
pub const BATCH_STRIDE_ENV: &str = "WSRS_BATCH_STRIDE";

/// The lockstep sweep block for this process: `WSRS_BATCH_STRIDE` when
/// set to a positive integer (clamped to at least 1), 8192 otherwise.
/// Read once per process.
#[must_use]
pub fn batch_stride() -> u32 {
    static STRIDE: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *STRIDE.get_or_init(|| {
        std::env::var(BATCH_STRIDE_ENV)
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .map_or(DEFAULT_STRIDE, |v| v.max(1))
    })
}

/// Whether `configs` can share one lockstep batch: every lane
/// single-threaded (SMT interleaves traces per-machine), no
/// virtual-physical registers (VP stays on the scan scheduler), and one
/// common predictor kind (the annotation is predictor state, run once).
#[must_use]
pub fn lockstep_compatible(configs: &[SimConfig]) -> bool {
    let Some(first) = configs.first() else {
        return false;
    };
    configs
        .iter()
        .all(|c| c.threads == 1 && c.vp_phys_per_subset.is_none() && c.predictor == first.predictor)
}

/// Runs the family predictor over `trace` once, producing one flag byte
/// per µop. Identical to what each scalar engine would compute inline,
/// because the predictor sees conditional branches in the same (trace)
/// order with the same tagged PCs.
fn annotate(kind: PredictorKind, trace: &[DynInst]) -> Vec<u8> {
    let mut predictor = kind.build();
    trace
        .iter()
        .map(|d| {
            if !d.is_cond_branch() {
                return 0;
            }
            let mut f = A_COND;
            if predict_uop(&mut predictor, 0, d) {
                f |= A_MISP;
            }
            f
        })
        .collect()
}

/// One lane's view of the shared trace: a private position over the
/// common µop array and flag array. Fetch is a pair of indexed loads —
/// the predictor ran at annotation time.
struct LaneStream<'t> {
    trace: &'t [DynInst],
    flags: &'t [u8],
    pos: usize,
}

impl FetchStream for LaneStream<'_> {
    fn next(&mut self, tid: usize) -> Option<AnnUop> {
        debug_assert_eq!(tid, 0, "lockstep lanes are single-threaded");
        let d = *self.trace.get(self.pos)?;
        let f = self.flags[self.pos];
        self.pos += 1;
        Some(AnnUop {
            d,
            cond_branch: f & A_COND != 0,
            mispredicted: f & A_MISP != 0,
        })
    }
}

/// Simulates every configuration in `configs` over `trace` (bounded to
/// `warmup + measure` µops, the [`crate::Simulator::run_measured`]
/// convention), advancing all lanes in coarse lockstep — round-robin
/// sweeps of a fixed cycle block per lane — over one shared annotated
/// trace. Returns one [`Report`] per lane, in `configs` order, each
/// bit-identical to the corresponding scalar `run_measured` call (lanes
/// share only read-only state, so the interleaving granularity is
/// unobservable in the results).
///
/// # Panics
///
/// Panics if `configs` is empty or not [`lockstep_compatible`], or if any
/// configuration is invalid.
#[must_use]
pub fn run_lockstep(
    configs: &[SimConfig],
    trace: &[DynInst],
    warmup: u64,
    measure: u64,
) -> Vec<Report> {
    run_lockstep_with_stride(configs, trace, warmup, measure, batch_stride())
}

/// [`run_lockstep`] with an explicit sweep block instead of the
/// process-wide [`batch_stride`]. Reports are stride-invariant for any
/// `stride ≥ 1` (enforced by the `stride_invariance` test): the knob only
/// changes which lane's cycles are simulated when, never what any lane
/// observes.
///
/// # Panics
///
/// Panics if `stride` is zero, if `configs` is empty or not
/// [`lockstep_compatible`], or if any configuration is invalid.
#[must_use]
pub fn run_lockstep_with_stride(
    configs: &[SimConfig],
    trace: &[DynInst],
    warmup: u64,
    measure: u64,
    stride: u32,
) -> Vec<Report> {
    assert!(stride > 0, "lockstep sweep block must be nonzero");
    assert!(
        lockstep_compatible(configs),
        "configs cannot share a lockstep batch"
    );
    for c in configs {
        c.validate();
    }
    let take = (warmup + measure).min(trace.len() as u64) as usize;
    let trace = &trace[..take];
    let flags = annotate(configs[0].predictor, trace);

    let mut lanes: Vec<(Engine<'_>, LaneStream<'_>, bool)> = configs
        .iter()
        .map(|cfg| {
            let mut e = Engine::new(cfg);
            e.set_warmup(warmup);
            let stream = LaneStream {
                trace,
                flags: &flags,
                pos: 0,
            };
            (e, stream, true)
        })
        .collect();

    // Coarse lockstep: each sweep advances every live lane by a block of
    // cycles. Lanes share nothing mutable — only the read-only trace and
    // flag arrays — so any interleaving granularity yields bit-identical
    // reports. Each lane's engine skips dead cycles independently inside
    // its sweep block (a skipped jump counts as one `step`), so stall-
    // heavy lanes burn through their blocks faster without perturbing
    // their siblings.
    let mut active = lanes.len();
    while active > 0 {
        for (engine, stream, live) in &mut lanes {
            if !*live {
                continue;
            }
            for _ in 0..stride {
                if !engine.step(stream) {
                    *live = false;
                    active -= 1;
                    break;
                }
            }
        }
    }

    lanes
        .into_iter()
        .map(|(engine, _, _)| engine.finish(None))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocPolicy;
    use crate::sim::Simulator;
    use wsrs_regfile::RenameStrategy;

    /// A short synthetic trace with branches, loads and stores.
    fn trace() -> Vec<DynInst> {
        use wsrs_isa::{Assembler, Emulator, Reg};
        let mut a = Assembler::new();
        let (i, n, t) = (Reg::new(1), Reg::new(2), Reg::new(3));
        a.li(i, 0);
        a.li(n, 400);
        let top = a.bind_label();
        for k in 4..9 {
            a.addi(Reg::new(k), Reg::new(k), 1);
        }
        a.lw(t, i, 16);
        a.add(t, t, i);
        a.sw(i, 32, t);
        a.addi(i, i, 1);
        a.blt(i, n, top);
        a.halt();
        Emulator::new(a.assemble(), 4096).collect()
    }

    fn family() -> Vec<SimConfig> {
        vec![
            SimConfig::wsrs(
                512,
                AllocPolicy::RandomCommutative,
                RenameStrategy::ExactCount,
            ),
            SimConfig::conventional_rr(256),
            SimConfig::monolithic(256),
            SimConfig::wsrs(384, AllocPolicy::LoadBalance, RenameStrategy::Recycling),
        ]
    }

    #[test]
    fn lockstep_matches_scalar_per_lane() {
        let trace = trace();
        let configs = family();
        let reports = run_lockstep(&configs, &trace, 500, trace.len() as u64 - 500);
        for (cfg, batched) in configs.iter().zip(&reports) {
            let scalar = Simulator::new(*cfg).run_measured(
                trace.iter().copied(),
                500,
                trace.len() as u64 - 500,
            );
            assert_eq!(
                format!("{batched:?}"),
                format!("{scalar:?}"),
                "lane diverged from scalar run"
            );
        }
    }

    #[test]
    fn single_lane_batch_is_scalar() {
        let trace = trace();
        let cfg = SimConfig::conventional_rr(256);
        let batched = run_lockstep(&[cfg], &trace, 0, trace.len() as u64);
        let scalar = Simulator::new(cfg).run(trace.iter().copied());
        assert_eq!(format!("{:?}", batched[0]), format!("{scalar:?}"));
    }

    /// The sweep block is a pure cache-tuning knob: every lane's report
    /// must be byte-identical at any stride, including a 1-cycle
    /// interleave and a stride beyond the whole run.
    #[test]
    fn stride_invariance() {
        let trace = trace();
        let configs = family();
        let measure = trace.len() as u64 - 500;
        let baseline: Vec<String> = run_lockstep_with_stride(&configs, &trace, 500, measure, 8192)
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        for stride in [1, 7, 1024, u32::MAX] {
            let got: Vec<String> = run_lockstep_with_stride(&configs, &trace, 500, measure, stride)
                .iter()
                .map(|r| format!("{r:?}"))
                .collect();
            assert_eq!(got, baseline, "stride {stride} perturbed a lane");
        }
    }

    #[test]
    #[should_panic(expected = "sweep block must be nonzero")]
    fn zero_stride_rejected() {
        let trace = trace();
        let _ = run_lockstep_with_stride(
            &[SimConfig::conventional_rr(256)],
            &trace,
            0,
            trace.len() as u64,
            0,
        );
    }

    #[test]
    fn compatibility_gate() {
        let mut smt = SimConfig::conventional_rr(256);
        smt.threads = 2;
        assert!(!lockstep_compatible(&[smt]));

        let mut vp = SimConfig::conventional_rr(256);
        vp.vp_phys_per_subset = Some(48);
        assert!(!lockstep_compatible(&[vp]));

        let mut perfect = SimConfig::conventional_rr(256);
        perfect.predictor = wsrs_frontend::PredictorKind::Perfect;
        assert!(!lockstep_compatible(&[
            SimConfig::conventional_rr(256),
            perfect
        ]));

        assert!(!lockstep_compatible(&[]));
        assert!(lockstep_compatible(&family()));
    }
}
