//! Interval-sampled simulation with functional fast-forward.
//!
//! SMARTS-style sampling: instead of cycle-simulating a whole trace, pick
//! K short measured intervals spread evenly across the measured region,
//! *functionally* fast-forward the long-horizon architectural state
//! (branch-predictor tables, cache tags) between them, run a short
//! detailed warmup before each interval to re-establish the short-horizon
//! state (window, rename map, queues, port/bus occupancy), and aggregate
//! the per-interval IPCs into an estimate with a measured error bound.
//!
//! ## Soundness of functional fast-forward
//!
//! Architectural state splits by *warmth horizon* — how far back in the
//! µop stream the state's contents can depend:
//!
//! * **Unbounded horizon**: predictor counters and cache tags/LRU
//!   accumulate over millions of µops. These *must* be carried across
//!   fast-forward, and they can be, functionally: direction prediction is
//!   a pure function of the trace prefix (timing never feeds back into
//!   it — the same property the batched lockstep path exploits), and
//!   cache residency/recency depend only on the access sequence, not on
//!   when accesses happen. [`Warmer`] advances exactly this state.
//! * **Unbounded horizon, WSRS only**: the *architectural subset map* —
//!   which register-file subset each logical register was last written
//!   into. On a WSRS machine cluster placement is constrained by operand
//!   subsets (a dyadic µop under `RM` is *fully* constrained), and
//!   rarely-rewritten registers (stack/global base registers) keep their
//!   subset for millions of µops, so the reset `i % 4` map mixes far too
//!   slowly for a detailed warmup to fix. Worse, the map's steady state is
//!   *draw-sequence-sensitive* (the same cell's exact IPC moves several
//!   percent across policy-RNG seeds), so a statistical imitation is not
//!   enough. [`MapWarmer`] therefore replays the engine's placement
//!   choices *exactly* — it owns a real `Allocator`, draws once per µop in
//!   trace order like the rename stage, and checkpoints both the map and
//!   the RNG position; the interval engine is seeded with the warmed
//!   assignment and the replayed draw position.
//! * **Bounded horizon**: the physical rename mappings, ROB/window
//!   contents, store queues, and port/bus occupancy are rewritten within
//!   a window-depth (~hundreds of µops) of execution. The per-interval
//!   *detailed warmup* re-establishes them exactly, so they are
//!   deliberately **not** checkpointed.
//!
//! Three approximations remain, all covered by the measured error bound:
//! the warmer touches memory in program order with no overlap (the
//! detailed engine reorders loads and lets forwarded loads skip the
//! cache), the map warmer ignores occupancy/exhaustion steering (exact
//! for `RM`/`RC`; approximate under `LoadBalance` or `avoid_exhaustion`),
//! and interval placement is systematic rather than random.
//!
//! ## Determinism
//!
//! The detailed interval runs are always constructed *from the encoded
//! checkpoint representation* — on a cold store the fast-forwarded state
//! is first encoded (and saved), then decoded into the interval engine
//! exactly as a warm run would decode it from disk. Sampled results are
//! therefore byte-identical for any store warmth, and each cell is
//! independent of worker threads exactly like the exact path.

use wsrs_frontend::DirectionPredictor;
use wsrs_isa::{DynInst, Fnv1a, RegClass, RegRef};
use wsrs_mem::MemoryHierarchy;
use wsrs_regfile::Subset;

use crate::alloc::Allocator;
use crate::config::{RegFileMode, SimConfig};
use crate::metrics::Report;
use crate::sim::{predict_uop, Engine, PredictedIters};

/// Environment variable enabling sampled grid execution (`1`/`true`/`on`).
pub const SAMPLED_ENV: &str = "WSRS_SAMPLED";
/// Environment variable overriding [`SampleSpec::intervals`].
pub const SAMPLE_INTERVALS_ENV: &str = "WSRS_SAMPLE_INTERVALS";
/// Environment variable overriding [`SampleSpec::interval_uops`].
pub const SAMPLE_UOPS_ENV: &str = "WSRS_SAMPLE_INTERVAL_UOPS";
/// Environment variable overriding [`SampleSpec::detail_warmup`].
pub const SAMPLE_WARMUP_ENV: &str = "WSRS_SAMPLE_DETAIL_WARMUP";

/// The sampling plan: how many intervals, how long, and how much detailed
/// warmup precedes each. Interval *placement* is a pure function of this
/// spec and the trace window (seed-free, evenly spaced), so the spec's
/// content hash plus the trace checksum fully identify every interval
/// boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SampleSpec {
    /// Number of measured intervals, K.
    pub intervals: u32,
    /// Measured µops per interval.
    pub interval_uops: u64,
    /// Detailed-warmup µops simulated before each measured interval to
    /// re-establish short-horizon pipeline state.
    pub detail_warmup: u64,
}

impl Default for SampleSpec {
    fn default() -> Self {
        // Tuned on the figure4 gate grid: 48 intervals hold equake's
        // phase variance to a ≤2% grid-mean error, and with the policy
        // RNG replayed exactly a ~1000-µop detailed warmup (window depth,
        // not map-mixing time) suffices. 48 × 1750 = 84 k detailed µops
        // per cell, ~11% of the 750 k-µop gate window.
        SampleSpec {
            intervals: 48,
            interval_uops: 750,
            detail_warmup: 1000,
        }
    }
}

impl SampleSpec {
    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any component is zero.
    pub fn validate(&self) {
        assert!(self.intervals > 0, "sample spec needs at least 1 interval");
        assert!(self.interval_uops > 0, "interval_uops must be positive");
        assert!(self.detail_warmup > 0, "detail_warmup must be positive");
    }

    /// Canonical content hash of the spec — the `spec` component of
    /// checkpoint keys and sampled memo keys. Field-order FNV-1a under a
    /// versioned tag, like `SimConfig::content_hash`.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        // v2: checkpoints additionally carry the functionally warmed
        // architectural subset map (WSRS configurations). v3: the map
        // warmer replays the engine's policy-RNG draws exactly and the
        // rename section's RNG word changed meaning from a private stream
        // to the engine's own draw position. Each bump changes sampled
        // estimates, so it invalidates older checkpoints and memoized
        // sampled cells together.
        h.write(b"wsrs-samplespec-v3;");
        h.write_u64(u64::from(self.intervals));
        h.write_u64(self.interval_uops);
        h.write_u64(self.detail_warmup);
        h.finish()
    }

    /// Resolves the sampled mode from the environment: `None` unless
    /// [`SAMPLED_ENV`] is truthy, otherwise the default spec with any
    /// per-field overrides applied.
    #[must_use]
    pub fn from_env() -> Option<SampleSpec> {
        let on = std::env::var(SAMPLED_ENV)
            .is_ok_and(|v| matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "true" | "on"));
        if !on {
            return None;
        }
        let mut spec = SampleSpec::default();
        if let Some(v) = env_u64(SAMPLE_INTERVALS_ENV) {
            spec.intervals = v.clamp(1, 10_000) as u32;
        }
        if let Some(v) = env_u64(SAMPLE_UOPS_ENV) {
            spec.interval_uops = v.max(1);
        }
        if let Some(v) = env_u64(SAMPLE_WARMUP_ENV) {
            spec.detail_warmup = v.max(1);
        }
        Some(spec)
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// The warm-state key: a content hash of exactly the configuration facets
/// whose state lives *inside* a checkpoint — the predictor kind, the
/// memory-hierarchy geometry, and (WSRS only) the facets driving the
/// warmed rename map. Conventional and write-specialized configurations
/// differing only in back-end geometry (cluster count, window, register
/// budget) share warm state, so one fast-forward pass serves a whole grid
/// column; WSRS configurations additionally split by allocation policy
/// and seed, because the warmed subset map replays the policy's placement
/// choices (`WSRS RC S 384/512` still share — register budget does not
/// enter the map).
#[must_use]
pub fn warm_state_key(cfg: &SimConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.write(b"wsrs-warmstate-v3;");
    h.write(cfg.predictor.to_string().as_bytes());
    h.write_u8(b';');
    for c in [cfg.hierarchy.l1, cfg.hierarchy.l2] {
        h.write_u64(c.size_bytes as u64);
        h.write_u64(c.line_bytes as u64);
        h.write_u64(c.associativity as u64);
        h.write_u64(u64::from(c.hit_latency));
    }
    h.write_u64(u64::from(cfg.hierarchy.l1_miss_penalty));
    h.write_u64(u64::from(cfg.hierarchy.l2_miss_penalty));
    h.write_u64(u64::from(cfg.hierarchy.l1_ports_per_cycle));
    h.write_u64(u64::from(cfg.hierarchy.l2_bytes_per_cycle));
    if cfg.mode == RegFileMode::Wsrs {
        h.write(b"map;");
        h.write(cfg.policy.to_string().as_bytes());
        h.write_u8(b';');
        h.write_u64(cfg.seed);
        h.write_u64(cfg.renamer.subsets as u64);
    }
    h.finish()
}

/// Functional warmer for the architectural subset map and the allocation
/// policy's RNG position (WSRS only). It owns a real [`Allocator`] — the
/// same type, seed, and construction as the detailed engine's — and calls
/// `choose` once per µop in trace order with operand subsets read from
/// its own map, exactly as the rename stage does. Because the policy RNG
/// draws exactly once per µop shape that needs randomness, the warmer's
/// draw sequence *is* the full run's: at any interval boundary the map
/// and the RNG position match what an uninterrupted detailed run would
/// hold, and the interval engine is seeded with both. The replay is exact
/// for the random policies (`RM`/`RC`); two steering inputs the warmer
/// cannot know are ignored — per-cluster occupancy (only `LoadBalance`
/// reads it) and free-register exhaustion (`avoid_exhaustion`, off by
/// default) — making those configurations approximate, covered by the
/// measured error bound.
#[derive(Clone, Debug)]
struct MapWarmer {
    alloc: Allocator,
    /// All-zero per-cluster occupancy handed to `choose`.
    zero_loads: Vec<usize>,
    /// Logical → subset, integer class.
    int: Vec<u8>,
    /// Logical → subset, floating-point class.
    fp: Vec<u8>,
}

impl MapWarmer {
    /// The reset map (`i % subsets`) and a freshly seeded allocator,
    /// matching `Renamer::new` and `Engine::new`.
    fn new(cfg: &SimConfig) -> MapWarmer {
        let subsets = cfg.renamer.subsets;
        let reset = |class: RegClass| {
            (0..class.logical_count())
                .map(|i| (i % subsets) as u8)
                .collect()
        };
        MapWarmer {
            alloc: Allocator::new(cfg.policy, cfg.mode, cfg.clusters, cfg.seed),
            zero_loads: vec![0; cfg.clusters],
            int: reset(RegClass::Int),
            fp: reset(RegClass::Fp),
        }
    }

    fn subset_of(&self, r: RegRef) -> Subset {
        let map = match r.class() {
            RegClass::Int => &self.int,
            RegClass::Fp => &self.fp,
        };
        Subset(map[r.index() as usize])
    }

    /// Advances over one µop: replays the rename stage's placement choice
    /// (every µop draws, even destination-less ones — the engine caches
    /// one `choose` per µop) and records the chosen cluster's subset as
    /// the destination's new home.
    fn advance_uop(&mut self, d: &DynInst) {
        let srcs = [
            d.srcs[0].map(|r| self.subset_of(r)),
            d.srcs[1].map(|r| self.subset_of(r)),
        ];
        let choice = self.alloc.choose(d, srcs, &self.zero_loads);
        if let Some(dst) = d.dst {
            let map = match dst.class() {
                RegClass::Int => &mut self.int,
                RegClass::Fp => &mut self.fp,
            };
            map[dst.index() as usize] = choice.cluster.subset().0;
        }
    }

    /// Encodes the warmer as a checkpoint section: policy-RNG state (8
    /// bytes LE) followed by the int and fp maps.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.int.len() + self.fp.len());
        out.extend_from_slice(&self.alloc.rng_state().to_le_bytes());
        out.extend_from_slice(&self.int);
        out.extend_from_slice(&self.fp);
        out
    }

    /// Decodes a section for `cfg`; `None` on any length or subset-range
    /// mismatch.
    fn decode(cfg: &SimConfig, bytes: &[u8]) -> Option<MapWarmer> {
        let subsets = cfg.renamer.subsets;
        let (ni, nf) = (RegClass::Int.logical_count(), RegClass::Fp.logical_count());
        if bytes.len() != 8 + ni + nf {
            return None;
        }
        let (rng_bytes, maps) = bytes.split_at(8);
        if maps.iter().any(|&b| b as usize >= subsets) {
            return None;
        }
        let mut alloc = Allocator::new(cfg.policy, cfg.mode, cfg.clusters, cfg.seed);
        alloc.set_rng_state(u64::from_le_bytes(
            rng_bytes.try_into().expect("8-byte split"),
        ));
        Some(MapWarmer {
            alloc,
            zero_loads: vec![0; cfg.clusters],
            int: maps[..ni].to_vec(),
            fp: maps[ni..].to_vec(),
        })
    }

    /// The checkpointed policy-RNG position.
    fn rng_state(&self) -> u64 {
        self.alloc.rng_state()
    }

    /// The current assignment of `class`, as subsets.
    fn subsets_vec(&self, class: RegClass) -> Vec<Subset> {
        let map = match class {
            RegClass::Int => &self.int,
            RegClass::Fp => &self.fp,
        };
        map.iter().map(|&b| Subset(b)).collect()
    }
}

/// One warmup checkpoint, in the simulator's own representation: the
/// fast-forward position plus the encoded long-horizon state. The
/// persistence layer (`wsrs-trace`) stores these as opaque tagged
/// sections; this crate owns the encodings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SampleCheckpoint {
    /// Interval index within the spec.
    pub interval: u32,
    /// µops functionally consumed from the trace start to reach this
    /// interval's detailed-warmup boundary.
    pub ff_uops: u64,
    /// Encoded predictor state (`DirectionPredictor::dump_state`); empty
    /// for stateless or oracle predictors.
    pub predictor: Vec<u8>,
    /// Encoded hierarchy state (`MemoryHierarchy::dump_state`).
    pub hierarchy: Vec<u8>,
    /// Encoded architectural-subset-map warmer state; empty for
    /// non-WSRS configurations (the map only constrains placement there).
    pub rename: Vec<u8>,
}

/// Checkpoint persistence as seen from the sampling loop. Implementations
/// key entries on (trace checksum, sim revision, spec hash, warm-state
/// key, interval) — everything but the interval is fixed per call, so the
/// interface passes only the interval index. A load must return `None`
/// rather than corrupt or mismatched data.
pub trait SampleStore {
    /// The checkpoint for `interval`, if a valid one is stored.
    fn load(&self, interval: u32) -> Option<SampleCheckpoint>;
    /// Persists `cp` (best-effort; errors are treated as a cache miss on
    /// the next run). Returns whether the checkpoint was actually
    /// persisted — the `checkpoints_saved` counter counts only those.
    fn save(&self, cp: &SampleCheckpoint) -> bool;
}

/// The null store: every load misses, saves are dropped. Sampling without
/// persistence.
pub struct NoSampleStore;

impl SampleStore for NoSampleStore {
    fn load(&self, _interval: u32) -> Option<SampleCheckpoint> {
        None
    }
    fn save(&self, _cp: &SampleCheckpoint) -> bool {
        false
    }
}

/// The result of one sampled cell.
#[derive(Clone, Debug)]
pub struct SampledReport {
    /// The IPC estimate: inverse of the mean per-interval CPI (with
    /// equal-µop intervals this equals measured µops over measured cycles,
    /// matching the exact path's ratio — an arithmetic mean of IPCs would
    /// bias high on phased workloads).
    pub ipc_estimate: f64,
    /// IPC of each measured interval, in placement order.
    pub per_interval_ipcs: Vec<f64>,
    /// Coefficient of variation of the per-interval CPIs (sample stddev
    /// over mean; 0 with fewer than two intervals).
    pub cv: f64,
    /// Half-width of the ~95% confidence interval on the IPC estimate:
    /// `1.96 · s_cpi / √K` mapped through the delta method, in absolute
    /// IPC.
    pub error_bound: f64,
    /// Aggregate counters summed over the detailed interval runs (the
    /// `Report` a sampled cell stands in for; `attribution` is `None` and
    /// the load-latency histogram is not aggregated).
    pub aggregate: Report,
    /// µops functionally fast-forwarded this run — 0 when every interval
    /// replayed from a checkpoint (the pure-replay fast path).
    pub ff_uops: u64,
    /// Checkpoints loaded from the store this run.
    pub checkpoints_loaded: u32,
    /// Checkpoints written to the store this run.
    pub checkpoints_saved: u32,
    /// µops simulated in detail (warmup + measured, all intervals).
    pub uops_detailed: u64,
}

/// One planned interval: fast-forward to `detail_start`, simulate
/// `[detail_start, measure_end)` in detail, measure from `measure_start`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Interval {
    detail_start: u64,
    measure_start: u64,
    measure_end: u64,
}

/// Evenly spaced, seed-free placement over the measured region
/// `[warmup, warmup + measure)` of a trace `n` µops long. Intervals whose
/// start would overlap the previous interval's detailed region (possible
/// only on tiny traces or very dense specs) are dropped; clamping keeps
/// the plan monotone, so the fast-forward cursor only moves forward.
fn plan_intervals(spec: &SampleSpec, warmup: u64, measure: u64, n: u64) -> Vec<Interval> {
    let region_start = warmup.min(n);
    let region_len = measure.min(n - region_start);
    let k = u64::from(spec.intervals);
    let mut plan = Vec::with_capacity(spec.intervals as usize);
    let mut prev_end = 0u64;
    for i in 0..k {
        let measure_start = region_start + i * region_len / k;
        if measure_start >= n || measure_start < prev_end {
            continue;
        }
        let measure_end = (measure_start + spec.interval_uops).min(n);
        let detail_start = measure_start
            .saturating_sub(spec.detail_warmup)
            .max(prev_end);
        plan.push(Interval {
            detail_start,
            measure_start,
            measure_end,
        });
        prev_end = measure_end;
    }
    plan
}

/// The functional fast-forward engine: carries exactly the unbounded-
/// horizon state (predictor, cache tags) across the gaps between
/// intervals, µop by µop, with no timing bookkeeping.
struct Warmer {
    predictor: Option<Box<dyn DirectionPredictor>>,
    hierarchy: MemoryHierarchy,
    /// `Some` iff the configuration is WSRS — the only mode where the
    /// architectural subset map constrains placement.
    map: Option<MapWarmer>,
}

impl Warmer {
    fn new(cfg: &SimConfig) -> Warmer {
        Warmer {
            predictor: cfg.predictor.build(),
            hierarchy: MemoryHierarchy::new(cfg.hierarchy),
            map: (cfg.mode == RegFileMode::Wsrs).then(|| MapWarmer::new(cfg)),
        }
    }

    /// Advances over `uops` functionally: every conditional branch trains
    /// the predictor (prediction is a pure function of trace order), every
    /// memory µop touches the tag arrays in program order, and every
    /// register write moves its destination's subset (WSRS).
    fn advance(&mut self, uops: &[DynInst]) {
        for d in uops {
            if d.is_cond_branch() {
                predict_uop(&mut self.predictor, 0, d);
            }
            if let Some(addr) = d.eff_addr {
                if d.is_load() {
                    self.hierarchy.warm_access(addr, false);
                } else if d.is_store() {
                    self.hierarchy.warm_access(addr, true);
                }
            }
            if let Some(m) = &mut self.map {
                m.advance_uop(d);
            }
        }
    }

    /// Encodes the current warm state as a checkpoint at `ff_uops`.
    fn snapshot(&self, interval: u32, ff_uops: u64) -> SampleCheckpoint {
        let mut predictor = Vec::new();
        if let Some(p) = &self.predictor {
            p.dump_state(&mut predictor);
        }
        let mut hierarchy = Vec::with_capacity(self.hierarchy.dump_len());
        self.hierarchy.dump_state(&mut hierarchy);
        SampleCheckpoint {
            interval,
            ff_uops,
            predictor,
            hierarchy,
            rename: self.map.as_ref().map_or_else(Vec::new, MapWarmer::encode),
        }
    }

    /// Replaces the warm state with `cp`'s, all-or-nothing: on any decode
    /// failure the warmer is left untouched and `false` is returned (the
    /// caller falls back to fast-forwarding).
    fn adopt(&mut self, cfg: &SimConfig, cp: &SampleCheckpoint) -> bool {
        let Some((predictor, hierarchy, map)) = decode_state(cfg, cp) else {
            return false;
        };
        self.predictor = predictor;
        self.hierarchy = hierarchy;
        self.map = map;
        true
    }
}

/// Decodes a checkpoint's state sections into fresh predictor/hierarchy/
/// map-warmer objects for `cfg`; `None` when any section does not match
/// the configuration's geometry (including a rename section present for a
/// non-WSRS configuration, or absent for a WSRS one).
#[allow(clippy::type_complexity)]
fn decode_state(
    cfg: &SimConfig,
    cp: &SampleCheckpoint,
) -> Option<(
    Option<Box<dyn DirectionPredictor>>,
    MemoryHierarchy,
    Option<MapWarmer>,
)> {
    let predictor = match cfg.predictor.build() {
        Some(mut p) => {
            if !p.load_state(&cp.predictor) {
                return None;
            }
            Some(p)
        }
        None => {
            if !cp.predictor.is_empty() {
                return None;
            }
            None
        }
    };
    let mut hierarchy = MemoryHierarchy::new(cfg.hierarchy);
    if !hierarchy.load_state(&cp.hierarchy) {
        return None;
    }
    let map = if cfg.mode == RegFileMode::Wsrs {
        Some(MapWarmer::decode(cfg, &cp.rename)?)
    } else {
        if !cp.rename.is_empty() {
            return None;
        }
        None
    };
    Some((predictor, hierarchy, map))
}

/// Runs one interval in detail from a checkpoint's state: a fresh engine
/// adopts the decoded hierarchy, the decoded predictor feeds the fetch
/// stream, and the first `warm_uops` retired µops are detailed warmup
/// excluded from measurement. Measurement *ends* at a retirement target
/// while the window is still full — the slice carries cooldown µops past
/// the measured region precisely so the pipeline never drains inside a
/// measurement, keeping both interval boundaries symmetric (SMARTS-style;
/// a drained tail would deflate and an undrained head inflate short
/// intervals).
fn run_interval(
    cfg: &SimConfig,
    uops: &[DynInst],
    warm_uops: u64,
    measure_uops: u64,
    cp: &SampleCheckpoint,
) -> Report {
    let (predictor, hierarchy, map) =
        decode_state(cfg, cp).expect("interval run handed an undecodable checkpoint");
    let mut engine = Engine::new(cfg);
    engine.set_hierarchy(hierarchy);
    if let Some(m) = &map {
        engine.set_arch_subsets(&m.subsets_vec(RegClass::Int), &m.subsets_vec(RegClass::Fp));
        engine.set_alloc_rng_state(m.rng_state());
    }
    engine.set_warmup(warm_uops);
    let target = warm_uops + measure_uops;
    let mut stream = PredictedIters::new(vec![uops.iter().cloned()], predictor);
    while engine.retired() < target && engine.step(&mut stream) {}
    engine.finish(None)
}

/// Sums the summable counters of the interval reports into one aggregate
/// (`unbalance_percent` is µop-weighted; the load-latency histogram is
/// left empty; `attribution` is dropped).
fn sum_reports(reports: &[Report]) -> Report {
    let mut it = reports.iter();
    let mut total = it.next().expect("at least one interval").clone();
    total.memory.load_latency = Default::default();
    total.attribution = None;
    let mut unbalance_weighted = total.unbalance_percent * total.uops as f64;
    for r in it {
        total.cycles += r.cycles;
        total.uops += r.uops;
        total.branches += r.branches;
        total.mispredicts += r.mispredicts;
        for (a, b) in total.per_cluster.iter_mut().zip(&r.per_cluster) {
            *a += b;
        }
        unbalance_weighted += r.unbalance_percent * r.uops as f64;
        total.stalls.frontend += r.stalls.frontend;
        total.stalls.rename += r.stalls.rename;
        total.stalls.window += r.stalls.window;
        for (a, b) in [
            (&mut total.memory.l1, &r.memory.l1),
            (&mut total.memory.l2, &r.memory.l2),
        ] {
            a.accesses += b.accesses;
            a.misses += b.misses;
            a.writebacks += b.writebacks;
        }
        total.memory.l1_port_stalls += r.memory.l1_port_stalls;
        total.memory.l2_bus_busy_cycles += r.memory.l2_bus_busy_cycles;
        total.rename.allocs += r.rename.allocs;
        total.rename.frees += r.rename.frees;
        total.rename.alloc_refusals += r.rename.alloc_refusals;
        for (row_a, row_b) in total
            .rename
            .refusals_by_subset
            .iter_mut()
            .zip(&r.rename.refusals_by_subset)
        {
            for (a, b) in row_a.iter_mut().zip(row_b) {
                *a += b;
            }
        }
        total.rename.recycled_unused += r.rename.recycled_unused;
        total.store_forwards += r.store_forwards;
        total.deadlocked |= r.deadlocked;
        total.deadlock_recoveries += r.deadlock_recoveries;
        for (a, b) in total.per_thread_uops.iter_mut().zip(&r.per_thread_uops) {
            *a += b;
        }
    }
    total.unbalance_percent = if total.uops == 0 {
        0.0
    } else {
        unbalance_weighted / total.uops as f64
    };
    total
}

/// Runs `cfg` over `uops` in sampled mode under `spec`, with `warmup` and
/// `measure` naming the trace's window (interval placement covers the
/// measured region). Checkpoints flow through `store`; pass
/// [`NoSampleStore`] to sample without persistence.
///
/// # Panics
///
/// Panics if the configuration is inconsistent, is multi-threaded
/// (sampling is restricted to single-thread configs), or the spec is
/// degenerate.
#[must_use]
pub fn run_sampled(
    cfg: &SimConfig,
    uops: &[DynInst],
    warmup: u64,
    measure: u64,
    spec: &SampleSpec,
    store: &dyn SampleStore,
) -> SampledReport {
    cfg.validate();
    spec.validate();
    assert_eq!(cfg.threads, 1, "sampling supports single-thread configs");

    let n = uops.len() as u64;
    let plan = plan_intervals(spec, warmup, measure, n);
    let mut warmer = Warmer::new(cfg);
    let mut pos = 0u64;
    let (mut ff_uops, mut loaded, mut saved, mut detailed) = (0u64, 0u32, 0u32, 0u64);
    let mut reports = Vec::with_capacity(plan.len());
    for (i, iv) in plan.iter().enumerate() {
        let interval = i as u32;
        let cp = match store.load(interval) {
            Some(cp) if cp.ff_uops == iv.detail_start && warmer.adopt(cfg, &cp) => {
                loaded += 1;
                cp
            }
            _ => {
                warmer.advance(&uops[pos as usize..iv.detail_start as usize]);
                ff_uops += iv.detail_start - pos;
                let cp = warmer.snapshot(interval, iv.detail_start);
                saved += u32::from(store.save(&cp));
                cp
            }
        };
        pos = iv.detail_start;
        detailed += iv.measure_end - iv.detail_start;
        // Cooldown tail: enough trace past the measured region to keep the
        // window full through the retirement target (in-flight capacity
        // plus fetch-buffer margin).
        let cooldown = (cfg.clusters * cfg.window_per_cluster * 2 + 64) as u64;
        let slice_end = (iv.measure_end + cooldown).min(n);
        reports.push(run_interval(
            cfg,
            &uops[iv.detail_start as usize..slice_end as usize],
            iv.measure_start - iv.detail_start,
            iv.measure_end - iv.measure_start,
            &cp,
        ));
    }
    assert!(
        !reports.is_empty(),
        "sampling plan is empty: trace too short for the measured region"
    );

    // SMARTS-style estimation happens in CPI space: with (near-)equal-µop
    // intervals the mean of per-interval CPIs equals measured-cycles over
    // measured-µops, which is what the exact path's IPC inverts — an
    // arithmetic mean of per-interval IPCs would be biased high whenever
    // the workload has slow phases. The confidence half-width is computed
    // on CPI and mapped to IPC via the delta method (d(1/x) = -dx/x²).
    let ipcs: Vec<f64> = reports.iter().map(Report::ipc).collect();
    let cpis: Vec<f64> = ipcs.iter().map(|&x| 1.0 / x).collect();
    let k = cpis.len() as f64;
    let mean_cpi = cpis.iter().sum::<f64>() / k;
    let (cv, error_bound) = if cpis.len() > 1 {
        let var = cpis
            .iter()
            .map(|x| (x - mean_cpi) * (x - mean_cpi))
            .sum::<f64>()
            / (k - 1.0);
        let s = var.sqrt();
        let cpi_bound = 1.96 * s / k.sqrt();
        (s / mean_cpi, cpi_bound / (mean_cpi * mean_cpi))
    } else {
        (0.0, 0.0)
    };
    SampledReport {
        ipc_estimate: 1.0 / mean_cpi,
        per_interval_ipcs: ipcs,
        cv,
        error_bound,
        aggregate: sum_reports(&reports),
        ff_uops,
        checkpoints_loaded: loaded,
        checkpoints_saved: saved,
        uops_detailed: detailed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocPolicy;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use wsrs_isa::{Assembler, Emulator, Reg};
    use wsrs_regfile::RenameStrategy;

    fn wsrs_cfg(regs: usize) -> SimConfig {
        SimConfig::wsrs(
            regs,
            AllocPolicy::RandomCommutative,
            RenameStrategy::ExactCount,
        )
    }

    /// An in-memory store that round-trips checkpoints, for exercising the
    /// cold→warm path without a filesystem.
    #[derive(Default)]
    struct MemStore {
        map: RefCell<HashMap<u32, SampleCheckpoint>>,
    }

    impl SampleStore for MemStore {
        fn load(&self, interval: u32) -> Option<SampleCheckpoint> {
            self.map.borrow().get(&interval).cloned()
        }
        fn save(&self, cp: &SampleCheckpoint) -> bool {
            self.map.borrow_mut().insert(cp.interval, cp.clone());
            true
        }
    }

    fn kernel_uops(n: usize) -> Vec<DynInst> {
        let mut a = Assembler::new();
        let (i, nr, acc, addr) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
        a.li(i, 0);
        a.li(nr, 1_000_000);
        a.li(acc, 0);
        let top = a.bind_label();
        a.andi(addr, i, 0x3ff);
        a.slli(addr, addr, 3);
        a.lw(acc, addr, 0);
        a.addi(acc, acc, 1);
        a.sw(addr, 0, acc);
        a.addi(i, i, 1);
        a.blt(i, nr, top);
        a.halt();
        Emulator::new(a.assemble(), 1 << 16).take(n).collect()
    }

    fn spec() -> SampleSpec {
        SampleSpec {
            intervals: 6,
            interval_uops: 400,
            detail_warmup: 600,
        }
    }

    #[test]
    fn spec_hash_covers_every_field() {
        let base = spec();
        assert_eq!(base.content_hash(), base.content_hash());
        for m in [
            SampleSpec {
                intervals: 7,
                ..base
            },
            SampleSpec {
                interval_uops: 401,
                ..base
            },
            SampleSpec {
                detail_warmup: 601,
                ..base
            },
        ] {
            assert_ne!(m.content_hash(), base.content_hash(), "{m:?}");
        }
    }

    #[test]
    fn warm_key_shares_geometry_but_splits_wsrs_policies() {
        let base = SimConfig::conventional_rr(256);
        let ws = SimConfig::write_specialized_rr(384, RenameStrategy::ExactCount);
        assert_eq!(
            warm_state_key(&base),
            warm_state_key(&ws),
            "non-WSRS back-end geometry must share warm state"
        );
        let mut pred = base;
        pred.predictor = wsrs_frontend::PredictorKind::Gshare64K;
        assert_ne!(warm_state_key(&base), warm_state_key(&pred));
        let mut hier = base;
        hier.hierarchy.l2_miss_penalty += 1;
        assert_ne!(warm_state_key(&base), warm_state_key(&hier));
        // WSRS checkpoints carry the policy-driven subset map: RC shares
        // across register budgets, but never with RM or with non-WSRS.
        assert_eq!(
            warm_state_key(&wsrs_cfg(384)),
            warm_state_key(&wsrs_cfg(512))
        );
        assert_ne!(warm_state_key(&base), warm_state_key(&wsrs_cfg(512)));
        let rm = SimConfig::wsrs(512, AllocPolicy::RandomMonadic, RenameStrategy::ExactCount);
        assert_ne!(warm_state_key(&rm), warm_state_key(&wsrs_cfg(512)));
    }

    #[test]
    fn planner_is_monotone_and_covers_the_region() {
        let s = spec();
        let plan = plan_intervals(&s, 3000, 12_000, 15_000);
        assert_eq!(plan.len(), 6);
        let mut prev_end = 0;
        for iv in &plan {
            assert!(iv.detail_start >= prev_end);
            assert!(iv.detail_start <= iv.measure_start);
            assert!(iv.measure_start < iv.measure_end);
            assert_eq!(iv.measure_start - iv.detail_start, s.detail_warmup);
            assert_eq!(iv.measure_end - iv.measure_start, s.interval_uops);
            prev_end = iv.measure_end;
        }
        assert_eq!(plan[0].measure_start, 3000);
        // A trace shorter than the window yields a clamped but usable plan.
        let short = plan_intervals(&s, 3000, 12_000, 4000);
        assert!(!short.is_empty());
        assert!(short.iter().all(|iv| iv.measure_end <= 4000));
    }

    #[test]
    fn cold_and_warm_runs_are_identical_and_warm_skips_fast_forward() {
        let cfg = wsrs_cfg(512);
        let uops = kernel_uops(30_000);
        let store = MemStore::default();
        let cold = run_sampled(&cfg, &uops, 6000, 20_000, &spec(), &store);
        assert_eq!(cold.checkpoints_loaded, 0);
        assert_eq!(cold.checkpoints_saved, 6);
        assert!(cold.ff_uops > 0);
        let warm = run_sampled(&cfg, &uops, 6000, 20_000, &spec(), &store);
        assert_eq!(warm.checkpoints_loaded, 6);
        assert_eq!(warm.checkpoints_saved, 0);
        assert_eq!(warm.ff_uops, 0, "fully warm runs are pure replay");
        assert_eq!(warm.per_interval_ipcs, cold.per_interval_ipcs);
        assert_eq!(warm.ipc_estimate.to_bits(), cold.ipc_estimate.to_bits());
        assert_eq!(warm.error_bound.to_bits(), cold.error_bound.to_bits());
        assert_eq!(warm.aggregate.cycles, cold.aggregate.cycles);
        assert_eq!(warm.aggregate.uops, cold.aggregate.uops);
        // And without any store at all: same numbers, nothing persisted.
        let none = run_sampled(&cfg, &uops, 6000, 20_000, &spec(), &NoSampleStore);
        assert_eq!(none.per_interval_ipcs, cold.per_interval_ipcs);
    }

    #[test]
    fn estimate_tracks_exact_ipc() {
        let cfg = wsrs_cfg(512);
        let uops = kernel_uops(30_000);
        // Measure a steady region: the first ~10k µops of a cold trace are
        // a cache-fill ramp, which real cells exclude with 1M-µop windows.
        let exact = crate::Simulator::new(cfg).run_measured(uops.iter().cloned(), 12_000, 16_000);
        let sampled = run_sampled(
            &cfg,
            &uops,
            12_000,
            16_000,
            &SampleSpec {
                intervals: 10,
                interval_uops: 1000,
                detail_warmup: 4000,
            },
            &NoSampleStore,
        );
        let rel = (sampled.ipc_estimate - exact.ipc()).abs() / exact.ipc();
        assert!(
            rel < 0.03,
            "sampled {} vs exact {} ({}% off)",
            sampled.ipc_estimate,
            exact.ipc(),
            100.0 * rel
        );
        assert!(
            (sampled.ipc_estimate - exact.ipc()).abs() < 2.0 * sampled.error_bound,
            "exact IPC {} outside 2x reported bound {} of estimate {}",
            exact.ipc(),
            sampled.error_bound,
            sampled.ipc_estimate
        );
        assert!(sampled.uops_detailed < uops.len() as u64);
    }

    #[test]
    fn rm_checkpoints_carry_the_subset_map_and_replay_identically() {
        let cfg = SimConfig::wsrs(512, AllocPolicy::RandomMonadic, RenameStrategy::ExactCount);
        let uops = kernel_uops(30_000);
        let store = MemStore::default();
        let cold = run_sampled(&cfg, &uops, 6000, 20_000, &spec(), &store);
        assert!(
            store.map.borrow().values().all(|cp| !cp.rename.is_empty()),
            "WSRS checkpoints must carry the warmed subset map"
        );
        let warm = run_sampled(&cfg, &uops, 6000, 20_000, &spec(), &store);
        assert_eq!(warm.ff_uops, 0);
        assert_eq!(warm.per_interval_ipcs, cold.per_interval_ipcs);
        assert_eq!(warm.ipc_estimate.to_bits(), cold.ipc_estimate.to_bits());
        // A corrupt rename section (bad subset byte) is a miss, not a
        // wrong map: the interval fast-forwards again and heals.
        *store
            .map
            .borrow_mut()
            .get_mut(&1)
            .unwrap()
            .rename
            .last_mut()
            .unwrap() = 200;
        let healed = run_sampled(&cfg, &uops, 6000, 20_000, &spec(), &store);
        assert_eq!(healed.per_interval_ipcs, cold.per_interval_ipcs);
        assert!(healed.ff_uops > 0);
        assert_eq!(healed.checkpoints_saved, 1);
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_fast_forward() {
        let cfg = wsrs_cfg(512);
        let uops = kernel_uops(20_000);
        let store = MemStore::default();
        let cold = run_sampled(&cfg, &uops, 4000, 12_000, &spec(), &store);
        // Truncate one entry's hierarchy section; that interval must
        // fast-forward again and produce the same numbers.
        store.map.borrow_mut().get_mut(&2).unwrap().hierarchy.pop();
        let healed = run_sampled(&cfg, &uops, 4000, 12_000, &spec(), &store);
        assert_eq!(healed.per_interval_ipcs, cold.per_interval_ipcs);
        assert!(healed.ff_uops > 0);
        assert_eq!(healed.checkpoints_saved, 1, "bad entry was rewritten");
    }

    #[test]
    fn perfect_predictor_samples_with_empty_state() {
        let mut cfg = wsrs_cfg(512);
        cfg.predictor = wsrs_frontend::PredictorKind::Perfect;
        let uops = kernel_uops(20_000);
        let store = MemStore::default();
        let cold = run_sampled(&cfg, &uops, 4000, 12_000, &spec(), &store);
        assert!(store
            .map
            .borrow()
            .values()
            .all(|cp| cp.predictor.is_empty()));
        let warm = run_sampled(&cfg, &uops, 4000, 12_000, &spec(), &store);
        assert_eq!(warm.per_interval_ipcs, cold.per_interval_ipcs);
        assert_eq!(warm.ff_uops, 0);
    }
}
