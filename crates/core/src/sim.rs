//! The cycle-level timing engine.
//!
//! The engine replays a dynamic µop trace (from the functional emulator)
//! through the §5 pipeline model:
//!
//! * **fetch** — sustained `fetch_width` µops/cycle (the paper idealizes
//!   the front end); conditional branches are predicted by 2Bc-gskew, and a
//!   misprediction stalls fetch until the branch resolves, with a
//!   configuration-dependent minimum penalty;
//! * **rename/dispatch** — in program order; the allocation policy picks a
//!   cluster (for WSRS, within the operand-subset constraints) and the
//!   destination is renamed into the cluster's register subset;
//! * **issue** — per cluster, oldest-first, two µops/cycle, with the
//!   cluster's functional-unit constraints; operands become usable one
//!   cycle later across clusters than inside the producing cluster;
//! * **memory** — load/store addresses are computed in program order;
//!   loads bypass non-conflicting stores and forward from conflicting ones;
//! * **commit** — in order, up to `fetch_width` per cycle; stores write the
//!   cache and previous register mappings are reclaimed at commit.
//!
//! Because only the correct path is fetched, mispredictions are pure
//! timing events and no squash machinery exists anywhere in the engine.
//!
//! The engine advances through [`Engine::step`] — exactly one cycle per
//! call — so a driver can interleave many engines over one trace (the
//! batched lockstep path, [`crate::batch`]). Front-end direction
//! prediction lives behind [`FetchStream`]: prediction depends only on
//! trace order, never on timing, so the batched driver annotates a shared
//! trace once and fans the per-µop outcomes out to every lane, while the
//! scalar path predicts inline as it pulls from its iterator.

use std::collections::VecDeque;

use crate::alloc::Allocator;
use crate::cluster::ClusterState;
use crate::config::{RegFileMode, SimConfig};
use crate::metrics::{Report, StallBreakdown, UnbalanceTracker};
use crate::pipeview::UopTiming;
use crate::slots::{
    class_index, PackedReg, Rob, SlotPush, F_LOAD, F_MISPREDICTED, F_STORE, LINK_NONE,
};
use crate::wheel::CalendarWheel;
use wsrs_frontend::DirectionPredictor;
use wsrs_isa::{latency, DynInst, RegClass};
use wsrs_mem::{MemoryHierarchy, StoreQueue, StoreQueueQuery};
use wsrs_regfile::{DeadlockMonitor, RenameStrategy, Renamer, Subset};
use wsrs_telemetry::{CycleAttribution, SlotBucket};

/// Sentinel for "value not yet produced".
const IN_FLIGHT: u64 = u64::MAX;

/// Sentinel for "not a memory µop" in the window's `mem_seq` lane.
const MEM_NONE: u64 = u64::MAX;

/// Cycles of continuous blocked-and-empty rename before declaring
/// deadlock. With an empty window nothing can commit, so the only registers
/// that can still appear are the ones maturing out of the strategy-1
/// recycling pipeline (a handful of cycles deep): 16 blocked-and-empty
/// cycles prove the wedge.
const DEADLOCK_THRESHOLD: u64 = 16;

/// A µop annotated with the front end's stream-order decisions. Whether a
/// conditional branch mispredicts is a pure function of the trace prefix
/// (the predictor sees every conditional branch in trace order and timing
/// never feeds back into it), which is what lets the batched engine
/// compute the annotation once per trace and share it across lanes.
#[derive(Clone, Copy, Debug)]
pub(crate) struct AnnUop {
    pub d: DynInst,
    pub cond_branch: bool,
    pub mispredicted: bool,
}

/// Per-thread source of annotated µops. The direction predictor lives
/// behind this trait, not in the engine.
pub(crate) trait FetchStream {
    /// The next µop of hardware thread `tid`, or `None` when its trace is
    /// exhausted.
    fn next(&mut self, tid: usize) -> Option<AnnUop>;
}

/// The scalar fetch stream: one iterator per hardware thread and a private
/// predictor, annotating µops as they are pulled.
pub(crate) struct PredictedIters<T> {
    traces: Vec<T>,
    /// `None` models the perfect-prediction oracle.
    predictor: Option<Box<dyn DirectionPredictor>>,
}

impl<T: Iterator<Item = DynInst>> PredictedIters<T> {
    pub(crate) fn new(traces: Vec<T>, predictor: Option<Box<dyn DirectionPredictor>>) -> Self {
        PredictedIters { traces, predictor }
    }
}

/// The predictor sees per-thread PCs (threads run distinct programs).
pub(crate) fn tagged_pc(tid: usize, pc: u64) -> u64 {
    pc | ((tid as u64) << 48)
}

/// Runs the direction predictor over one µop, returning whether it
/// mispredicted (shared by the scalar stream and the batch annotator).
pub(crate) fn predict_uop(
    predictor: &mut Option<Box<dyn DirectionPredictor>>,
    tid: usize,
    d: &DynInst,
) -> bool {
    let Some(p) = predictor.as_mut() else {
        return false;
    };
    let pc = tagged_pc(tid, d.pc);
    let pred = p.predict(pc);
    p.update(pc, d.taken);
    pred != d.taken
}

impl<T: Iterator<Item = DynInst>> FetchStream for PredictedIters<T> {
    fn next(&mut self, tid: usize) -> Option<AnnUop> {
        let d = self.traces[tid].next()?;
        let cond_branch = d.is_cond_branch();
        let mispredicted = cond_branch && predict_uop(&mut self.predictor, tid, &d);
        Some(AnnUop {
            d,
            cond_branch,
            mispredicted,
        })
    }
}

#[derive(Clone, Copy, Debug)]
struct RegInfo {
    /// Cycle the value becomes usable in the producing cluster; `IN_FLIGHT`
    /// while the producer has not issued.
    avail: u64,
    /// Head of the intrusive waiter list — `(seq << 1) | src_index` of the
    /// most recently hung consumer, [`LINK_NONE`] when none. Only non-null
    /// while `avail == IN_FLIGHT` under the event scheduler.
    wake_head: u64,
    /// Producing cluster (drives the inter-cluster forwarding penalty).
    cluster: u8,
    /// Whether the producer is a load — lets cycle attribution charge a
    /// dependent's wait to the memory hierarchy rather than ALU latency.
    from_load: bool,
}

/// Why dispatch made no progress this cycle (cycle-attribution input;
/// records only the *last* observed blocker, which is the binding one).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
enum DispatchBlock {
    /// Dispatch ran (or had nothing it was obliged to do).
    #[default]
    None,
    /// Fetch buffers empty.
    Frontend,
    /// Register allocation refused (subset/free-list exhausted); the
    /// subset is in `Engine::blocked_subset`.
    Rename,
    /// ROB or per-cluster window full.
    Window,
    /// Frozen by a deadlock-recovery exception.
    Frozen,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Redirect {
    /// Fetch is flowing.
    None,
    /// A mispredicted branch (by fetch id) was fetched; waiting for it to
    /// resolve.
    WaitingResolve(u64),
    /// Resolved; fetch resumes at the given cycle.
    WaitingCycle(u64),
}

#[derive(Clone, Copy, Debug)]
struct Fetched {
    d: DynInst,
    fetch_cycle: u64,
    fetch_id: u64,
    mispredicted: bool,
    /// Cluster choice made on the first dispatch attempt; sticky across
    /// retries (hardware fixes the allocation before rename, §2.2).
    choice: Option<crate::alloc::ClusterChoice>,
}

/// A configured simulator. Construct with [`Simulator::new`], run a trace
/// with [`Simulator::run`].
#[derive(Debug)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// (see [`SimConfig::validate`]).
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        config.validate();
        Simulator { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the trace to exhaustion (plus pipeline drain) and reports.
    pub fn run(&self, trace: impl IntoIterator<Item = DynInst>) -> Report {
        Engine::new(&self.config).run(trace.into_iter(), 0)
    }

    /// Runs `warmup + measure` µops of the trace, warming predictors,
    /// caches and the window for the first `warmup` retired µops and
    /// reporting cycle/IPC/branch/unbalance statistics over the measured
    /// window only — the paper's §5.3 methodology (fast-forward, warm,
    /// measure a slice). Memory-hierarchy and rename counters cover the
    /// whole run.
    pub fn run_measured(
        &self,
        trace: impl IntoIterator<Item = DynInst>,
        warmup: u64,
        measure: u64,
    ) -> Report {
        let bounded = trace.into_iter().take((warmup + measure) as usize);
        Engine::new(&self.config).run(bounded, warmup)
    }

    /// Like [`Simulator::run_measured`], but forcing the retained O(window)
    /// selection scan instead of the event-driven scheduler. Bit-identical
    /// to [`Simulator::run_measured`] by construction — exposed as the
    /// differential-testing oracle for the wheel + intrusive-list engine
    /// (see `tests/proptest_scheduler.rs` and the `scheduler` bench).
    pub fn run_measured_scan_oracle(
        &self,
        trace: impl IntoIterator<Item = DynInst>,
        warmup: u64,
        measure: u64,
    ) -> Report {
        let bounded = trace.into_iter().take((warmup + measure) as usize);
        let mut engine = Engine::new(&self.config);
        engine.force_scan = true;
        engine.run(bounded, warmup)
    }

    /// Like [`Simulator::run_measured`], but forcing the cycle-by-cycle
    /// loop even when event-horizon skipping is enabled for the process —
    /// the in-process half of a skip-vs-no-skip timing A/B (the
    /// [`crate::NO_SKIP_ENV`] switch does the same for a whole process).
    /// Bit-identical to [`Simulator::run_measured`] by construction.
    pub fn run_measured_no_skip(
        &self,
        trace: impl IntoIterator<Item = DynInst>,
        warmup: u64,
        measure: u64,
    ) -> Report {
        let bounded = trace.into_iter().take((warmup + measure) as usize);
        let mut engine = Engine::new(&self.config);
        engine.allow_skip = false;
        engine.run(bounded, warmup)
    }

    /// Runs an SMT machine: one trace per hardware thread
    /// (`config.threads` of them). Threads share fetch/dispatch bandwidth
    /// round-robin, the ROB, the clusters, the caches and the physical
    /// register file; each has its own architectural map tables, store
    /// queue and memory-order stream. The report's `per_thread_uops`
    /// carries the per-thread retirement counts.
    pub fn run_smt<I>(&self, traces: Vec<I>) -> Report
    where
        I: IntoIterator<Item = DynInst>,
    {
        let boxed: Vec<Box<dyn Iterator<Item = DynInst>>> = traces
            .into_iter()
            .map(|t| Box::new(t.into_iter()) as Box<dyn Iterator<Item = DynInst>>)
            .collect();
        Engine::new(&self.config).run_inner(boxed, 0, None)
    }

    /// Like [`Simulator::run_smt`] with a bounded measurement window: every
    /// thread's trace is truncated to `per_thread_uops` µops.
    pub fn run_smt_bounded<I>(&self, traces: Vec<I>, per_thread_uops: usize) -> Report
    where
        I: IntoIterator<Item = DynInst>,
    {
        let boxed: Vec<Box<dyn Iterator<Item = DynInst>>> = traces
            .into_iter()
            .map(|t| {
                Box::new(t.into_iter().take(per_thread_uops)) as Box<dyn Iterator<Item = DynInst>>
            })
            .collect();
        Engine::new(&self.config).run_inner(boxed, 0, None)
    }

    /// Runs like [`Simulator::run`] while recording per-µop pipeline
    /// timestamps for the first `uop_limit` µops (see
    /// [`crate::pipeview`]).
    pub fn run_timeline(
        &self,
        trace: impl IntoIterator<Item = DynInst>,
        uop_limit: usize,
    ) -> (Report, Vec<UopTiming>) {
        let mut engine = Engine::new(&self.config);
        engine.timeline = Some((Vec::with_capacity(uop_limit.min(4096)), uop_limit));
        let mut out = Vec::new();
        let report = engine.run_collecting(trace.into_iter(), &mut out);
        (report, out)
    }
}

/// Virtual-physical register state (config `vp_phys_per_subset`):
/// physical occupancy counters per class and subset, claimed at issue and
/// released when the superseding instruction commits.
#[derive(Clone, Debug)]
struct VpState {
    capacity: usize,
    /// `used[class][subset]`
    used: [Vec<usize>; 2],
}

/// Counters snapshotted at the warmup boundary.
#[derive(Clone, Debug, Default)]
struct Snapshot {
    cycle: u64,
    retired: u64,
    branches: u64,
    mispredicts: u64,
    per_cluster: Vec<u64>,
    store_forwards: u64,
    unbalance_groups: u64,
    unbalance_flagged: u64,
    attr: Option<CycleAttribution>,
}

pub(crate) struct Engine<'a> {
    cfg: &'a SimConfig,
    cycle: u64,
    renamer: Renamer,
    allocator: Allocator,
    hierarchy: MemoryHierarchy,
    clusters: Vec<ClusterState>,
    rob: Rob,
    reg_info: [Vec<RegInfo>; 2],
    /// Per-thread fetch buffers, redirect states, store queues and
    /// memory-order counters (single-threaded machines use index 0).
    fetch_bufs: Vec<VecDeque<Fetched>>,
    redirects: Vec<Redirect>,
    store_queues: Vec<StoreQueue>,
    /// Program-order index of the next memory µop allowed to issue, per
    /// thread (addresses are computed in order within a thread, §5.2).
    mem_next_issue: Vec<u64>,
    mem_next_assign: Vec<u64>,
    seq_next: u64,
    fetch_id_next: u64,
    thread_retired: Vec<u64>,
    deadlock: DeadlockMonitor,
    deadlocked: bool,
    /// Subset whose exhaustion blocked renaming most recently.
    blocked_subset: Option<(RegClass, Subset)>,
    /// Dispatch is frozen until this cycle (deadlock-exception cost).
    dispatch_frozen_until: u64,
    recoveries: u64,
    /// Optional per-µop timeline collection: (entries, limit).
    timeline: Option<(Vec<UopTiming>, usize)>,
    vp: Option<VpState>,
    /// (head seq, cycles the ROB head has been VP-capacity-blocked).
    vp_blocked: (u64, u64),
    /// Event scheduler: µops whose operands become usable at a known future
    /// cycle, booked on a fixed-horizon calendar wheel. The per-register
    /// waiter lists live intrusively in `RegInfo::wake_head` and the
    /// window's `next_waiter` lane — hanging or draining a waiter is
    /// pointer writes, never an allocation.
    wheel: CalendarWheel,
    /// Whether the event-horizon fast path may jump the clock over provably
    /// dead cycles ([`crate::skip_enabled`], frozen per process; cleared by
    /// [`Simulator::run_measured_no_skip`] for in-process A/B timing).
    allow_skip: bool,
    /// Cycles the event-horizon fast path jumped over without simulating.
    /// Diagnostics only — deliberately not part of any [`Report`], which
    /// must stay bit-identical whether or not skipping ran.
    pub(crate) skipped_cycles: u64,
    /// Forces the legacy O(window) scan even without virtual-physical
    /// registers (test oracle for the event scheduler).
    pub(crate) force_scan: bool,
    /// Per-thread trace exhaustion (formerly a `run_inner` local; a field
    /// so [`Engine::step`] can be driven cycle-by-cycle).
    trace_done: Vec<bool>,
    /// Retired-µop threshold at which the warmup snapshot is taken.
    warmup: u64,
    /// Counters at the warmup boundary, once reached.
    snap: Option<Snapshot>,
    /// Wedge detection: (retired, cycle) at the last retirement.
    last_progress: (u64, u64),
    fetch_buf_cap: usize,
    /// Dispatch scratch buffers, reused every cycle.
    occ_buf: Vec<usize>,
    free_buf: Vec<usize>,
    /// Issue scratch buffers, reused every cycle: destinations completed
    /// this cycle (deferred writeback), resolved branch redirects, and the
    /// wheel's drain staging.
    dest_updates: Vec<(PackedReg, u64)>,
    redirect_buf: Vec<(usize, u64, u64)>,
    due_buf: Vec<u64>,
    /// Scan-path scratch: VP reservations per class/subset, zeroed in
    /// place at the top of each scan.
    vp_reserved: [Vec<usize>; 2],
    /// Recovery scratch (cold paths), reused across recoveries.
    victims_buf: Vec<(usize, usize)>,
    // metrics
    retired: u64,
    branches: u64,
    mispredicts: u64,
    stalls: StallBreakdown,
    unbalance: UnbalanceTracker,
    store_forwards: u64,
    /// Full-pipeline cycle attribution (`Some` iff `cfg.telemetry`); the
    /// disabled path costs one branch per cycle.
    attr: Option<CycleAttribution>,
    /// µops retired by the current cycle's `commit()` pass.
    committed_this_cycle: u64,
    /// Why this cycle's `dispatch()` made no progress.
    dispatch_block: DispatchBlock,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(cfg: &'a SimConfig) -> Self {
        let renamer = Renamer::new(cfg.renamer);
        let reg_info = [
            Self::initial_regs(&renamer, RegClass::Int, cfg),
            Self::initial_regs(&renamer, RegClass::Fp, cfg),
        ];
        let vp = cfg.vp_phys_per_subset.map(|capacity| {
            let subsets = cfg.renamer.subsets;
            let count_arch = |class: RegClass| {
                (0..subsets)
                    .map(|s| renamer.map_table(class).mapped_into(Subset(s as u8)))
                    .collect::<Vec<_>>()
            };
            VpState {
                capacity,
                used: [count_arch(RegClass::Int), count_arch(RegClass::Fp)],
            }
        });
        Engine {
            cfg,
            cycle: 0,
            allocator: Allocator::new(cfg.policy, cfg.mode, cfg.clusters, cfg.seed),
            renamer,
            hierarchy: MemoryHierarchy::new(cfg.hierarchy),
            clusters: (0..cfg.clusters)
                .map(|i| ClusterState::with_resources(cfg.resources[i.min(3)]))
                .collect(),
            rob: Rob::new(cfg.rob_size(), cfg.clusters),
            reg_info,
            fetch_bufs: (0..cfg.threads)
                .map(|_| VecDeque::with_capacity(4 * cfg.fetch_width))
                .collect(),
            redirects: vec![Redirect::None; cfg.threads],
            store_queues: vec![StoreQueue::new(); cfg.threads],
            mem_next_issue: vec![0; cfg.threads],
            mem_next_assign: vec![0; cfg.threads],
            seq_next: 0,
            fetch_id_next: 0,
            thread_retired: vec![0; cfg.threads],
            deadlock: DeadlockMonitor::new(DEADLOCK_THRESHOLD),
            deadlocked: false,
            blocked_subset: None,
            dispatch_frozen_until: 0,
            recoveries: 0,
            timeline: None,
            vp,
            vp_blocked: (u64::MAX, 0),
            wheel: CalendarWheel::new(cfg.scheduler_horizon()),
            allow_skip: crate::skip_enabled(),
            skipped_cycles: 0,
            force_scan: false,
            trace_done: vec![false; cfg.threads],
            warmup: 0,
            snap: None,
            last_progress: (0, 0),
            fetch_buf_cap: 4 * cfg.fetch_width,
            occ_buf: Vec::with_capacity(cfg.clusters),
            free_buf: Vec::with_capacity(cfg.renamer.subsets),
            dest_updates: Vec::new(),
            redirect_buf: Vec::new(),
            due_buf: Vec::new(),
            vp_reserved: [vec![0; cfg.renamer.subsets], vec![0; cfg.renamer.subsets]],
            victims_buf: Vec::new(),
            retired: 0,
            branches: 0,
            mispredicts: 0,
            stalls: StallBreakdown::default(),
            unbalance: UnbalanceTracker::paper(cfg.clusters),
            store_forwards: 0,
            attr: cfg
                .telemetry
                .then(|| CycleAttribution::new(cfg.fetch_width)),
            committed_this_cycle: 0,
            dispatch_block: DispatchBlock::None,
        }
    }

    /// Sets the retired-µop count at which the measurement window opens
    /// (for drivers using [`Engine::step`] directly).
    pub(crate) fn set_warmup(&mut self, warmup: u64) {
        self.warmup = warmup;
    }

    /// µops retired so far (for drivers using [`Engine::step`] directly
    /// that end measurement at a retirement target rather than draining).
    pub(crate) fn retired(&self) -> u64 {
        self.retired
    }

    /// Replaces the memory hierarchy with a pre-warmed one (the sampled
    /// path restores checkpointed cache state before an interval run).
    /// The replacement must be built from the same configuration.
    pub(crate) fn set_hierarchy(&mut self, hierarchy: MemoryHierarchy) {
        assert_eq!(
            *hierarchy.config(),
            self.cfg.hierarchy,
            "hierarchy configuration mismatch"
        );
        self.hierarchy = hierarchy;
    }

    /// Replaces the reset rename map with a warm architectural subset
    /// assignment (the sampled path restores the functionally warmed
    /// logical→subset distribution before an interval run). Rebuilds the
    /// renamer, the physical-register table, and the register-cache
    /// occupancy exactly as [`Engine::new`] would have built them from
    /// this assignment. Must be called before the first `step`.
    pub(crate) fn set_arch_subsets(&mut self, int: &[Subset], fp: &[Subset]) {
        assert_eq!(
            self.cycle, 0,
            "warm subsets must be installed before stepping"
        );
        self.renamer = Renamer::with_arch_subsets(self.cfg.renamer, int, fp);
        self.reg_info = [
            Self::initial_regs(&self.renamer, RegClass::Int, self.cfg),
            Self::initial_regs(&self.renamer, RegClass::Fp, self.cfg),
        ];
        if let Some(vp) = &mut self.vp {
            let renamer = &self.renamer;
            let subsets = self.cfg.renamer.subsets;
            let count_arch = |class: RegClass| {
                (0..subsets)
                    .map(|s| renamer.map_table(class).mapped_into(Subset(s as u8)))
                    .collect::<Vec<_>>()
            };
            vp.used = [count_arch(RegClass::Int), count_arch(RegClass::Fp)];
        }
    }

    /// Repositions the allocation policy's RNG mid-stream (the sampled
    /// path restores the draw position the full run would have reached at
    /// the interval boundary, so interval placement choices replay the
    /// exact run's). Must be called before the first `step`.
    pub(crate) fn set_alloc_rng_state(&mut self, state: u64) {
        assert_eq!(self.cycle, 0, "RNG state must be installed before stepping");
        self.allocator.set_rng_state(state);
    }

    fn initial_regs(renamer: &Renamer, class: RegClass, cfg: &SimConfig) -> Vec<RegInfo> {
        let total = match class {
            RegClass::Int => cfg.renamer.int_regs,
            RegClass::Fp => cfg.renamer.fp_regs,
        };
        let mut v = vec![
            RegInfo {
                avail: 0,
                wake_head: LINK_NONE,
                cluster: 0,
                from_load: false,
            };
            total
        ];
        // Architectural reset values live in their subset's "home" cluster.
        for (_, m) in renamer.map_table(class).iter() {
            v[m.phys.0 as usize].cluster = m.subset.0 % cfg.clusters as u8;
        }
        v
    }

    /// Runs to completion, moving any collected timeline into `out`.
    fn run_collecting<T: Iterator<Item = DynInst>>(
        self,
        trace: T,
        out: &mut Vec<UopTiming>,
    ) -> Report {
        self.run_inner(vec![trace], 0, Some(out))
    }

    fn run<T: Iterator<Item = DynInst>>(self, trace: T, warmup: u64) -> Report {
        self.run_inner(vec![trace], warmup, None)
    }

    /// Monomorphized driver: `T` is the concrete trace iterator, so the
    /// common single-thread path (grid cells replaying recorded traces)
    /// pays no dynamic dispatch per µop; the SMT entry points pass
    /// `Box<dyn Iterator>` as `T`.
    fn run_inner<T: Iterator<Item = DynInst>>(
        mut self,
        traces: Vec<T>,
        warmup: u64,
        timeline_out: Option<&mut Vec<UopTiming>>,
    ) -> Report {
        assert_eq!(
            traces.len(),
            self.cfg.threads,
            "one trace per hardware thread"
        );
        self.warmup = warmup;
        let mut stream = PredictedIters::new(traces, self.cfg.predictor.build());
        while self.step(&mut stream) {}
        self.finish(timeline_out)
    }

    /// Advances the machine by exactly one cycle, pulling newly fetched
    /// µops from `stream`. Returns `false` once the pipeline has drained
    /// (or the machine deadlocked) — after which [`Engine::finish`]
    /// produces the report.
    pub(crate) fn step<S: FetchStream>(&mut self, stream: &mut S) -> bool {
        self.commit();
        if self.warmup > 0 && self.snap.is_none() && self.retired >= self.warmup {
            self.snap = Some(Snapshot {
                cycle: self.cycle,
                retired: self.retired,
                branches: self.branches,
                mispredicts: self.mispredicts,
                per_cluster: self.clusters.iter().map(|c| c.dispatched).collect(),
                store_forwards: self.store_forwards,
                unbalance_groups: self.unbalance.groups(),
                unbalance_flagged: self.unbalance.unbalanced(),
                attr: self.attr.clone(),
            });
        }
        self.fetch(stream);
        self.dispatch();
        self.issue();
        if self.attr.is_some() {
            self.attribute_cycle();
        }

        if self.trace_done.iter().all(|&d| d)
            && self.fetch_bufs.iter().all(VecDeque::is_empty)
            && self.rob.is_empty()
        {
            return false;
        }
        if self.deadlocked {
            return false;
        }
        if self.retired != self.last_progress.0 {
            self.last_progress = (self.retired, self.cycle);
        } else {
            assert!(
                self.cycle - self.last_progress.1 < 200_000,
                "simulator wedged at cycle {} ({} retired, rob {}, fetch {})",
                self.cycle,
                self.retired,
                self.rob.len(),
                self.fetch_bufs.iter().map(VecDeque::len).sum::<usize>()
            );
        }
        let mut next = self.cycle + 1;
        if self.allow_skip && self.event_scheduler() {
            if let Some(t) = self.skip_target() {
                self.apply_skip(t);
                next = t;
            }
        }
        self.cycle = next;
        true
    }

    /// The event-horizon query: the earliest future cycle at which this
    /// machine's state can change, when every cycle before it is provably
    /// dead — nothing fetches, dispatches, issues, commits, or resolves.
    /// Returns `None` unless at least one whole cycle can be skipped.
    ///
    /// Runs at the end of a stepped cycle, so the machine is in its
    /// settled end-of-cycle state. The proof obligations, per stage:
    ///
    /// * **issue** — no µop is awake (`ready_count == 0`), and the wheel
    ///   delivers nothing before the target
    ///   ([`CalendarWheel::next_due_before`]);
    /// * **commit** — the head is not done, or completes no earlier than
    ///   the target (a done head with `done_cycle ≤ cycle + 1` vetoes);
    /// * **fetch** — every live thread is redirect-blocked (resume cycles
    ///   cap the target) or has a full fetch buffer;
    /// * **dispatch** — blocked on the front end (returns before touching
    ///   the renamer: strategy-agnostic) or on a full window, which for
    ///   single-thread non-`Recycling` machines replays as pure no-ops —
    ///   `FreeList::tick` is catch-up-exact, `ExactCount::end_cycle` is a
    ///   no-op, and the sticky cluster choice is already cached;
    /// * **telemetry** — needs no cap: over a dead region the stall
    ///   bucket is a piecewise-constant function of the probe cycle, and
    ///   [`Self::charge_skipped`] charges each constant segment in bulk;
    /// * **wedge detection** — the target never jumps past the
    ///   no-progress assertion's firing cycle.
    fn skip_target(&self) -> Option<u64> {
        match self.dispatch_block {
            DispatchBlock::Frontend => {}
            // Window-blocked cycles re-run rename bookkeeping that is only
            // provably stateless for one thread (SMT rotation can dispatch
            // a different thread next cycle) outside the Recycling
            // strategy's per-cycle staging churn.
            DispatchBlock::Window => {
                if self.cfg.threads != 1 || self.cfg.renamer.strategy == RenameStrategy::Recycling {
                    return None;
                }
            }
            _ => return None,
        }
        if self.rob.ready_count() != 0 {
            return None;
        }
        // Cheap caps first, the wheel last: every bound accumulated into
        // `t` truncates the wheel's occupancy scan below, so the cost of
        // the query is bounded by the cycles actually skipped — without
        // this ordering, a telemetry breakpoint two cycles out would
        // still pay a scan all the way to a miss return hundreds of
        // cycles away, every blocked cycle.
        let mut t = self.last_progress.1 + 200_000;
        for tid in 0..self.cfg.threads {
            if self.trace_done[tid] {
                continue;
            }
            match self.redirects[tid] {
                // Resolution comes from an issue event, already capped by
                // the wheel below.
                Redirect::WaitingResolve(_) => {}
                Redirect::WaitingCycle(c) => t = t.min(c.max(self.cycle + 1)),
                Redirect::None => {
                    if self.fetch_bufs[tid].len() < self.fetch_buf_cap {
                        return None; // fetch would make progress
                    }
                }
            }
        }
        if !self.rob.is_empty() && self.rob.is_done(0) {
            t = t.min(self.rob.done_cycle(0).max(self.cycle + 1));
        }
        if let Some(due) = self.wheel.next_due_before(t) {
            t = due;
        }
        (t > self.cycle + 1).then_some(t)
    }

    /// Jumps the clock from the end of the current cycle straight to `t`,
    /// bulk-applying the side effects the `t - cycle - 1` skipped cycles
    /// would have accumulated one at a time: their dispatch stall counters
    /// and their telemetry stall buckets (charged segment-wise by
    /// [`Self::charge_skipped`]). Everything else about those cycles is a
    /// proven no-op.
    fn apply_skip(&mut self, t: u64) {
        let k = t - self.cycle - 1;
        self.skipped_cycles += k;
        self.wheel.advance_to(t);
        match self.dispatch_block {
            DispatchBlock::Frontend => self.stalls.frontend += self.cfg.fetch_width as u64 * k,
            DispatchBlock::Window => self.stalls.window += k,
            _ => unreachable!("skip_target vetted the dispatch block"),
        }
        if self.attr.is_some() {
            self.charge_skipped(self.cycle + 1, t);
        }
    }

    /// Charges telemetry for the skipped cycles `[from, t)`. Over a dead
    /// region — no fetch, dispatch, issue, or commit, and no register
    /// becoming available (that would be an issue event, which caps the
    /// jump) — [`Self::stall_bucket_at`] is a piecewise-constant function
    /// of the probe cycle: its value can only change where a probe
    /// crosses one of the head's operand thresholds (the operand's usable
    /// cycle, or its cross-cluster arrival). So walk those segments and
    /// bulk-charge each one, instead of capping the jump at every
    /// threshold and paying a full skip analysis per one- or two-cycle
    /// hop (operand-usable and forwarded thresholds are typically
    /// adjacent).
    fn charge_skipped(&mut self, from: u64, t: u64) {
        let mut at = from;
        while at < t {
            let bucket = self.stall_bucket_at(at);
            debug_assert_ne!(
                bucket,
                SlotBucket::RenameStall,
                "skipped cycles are never rename-stalled"
            );
            // The next probe cycle at which the bucket could differ: the
            // smallest operand threshold strictly above `at` (none — or
            // a done/empty head, whose bucket is time-independent —
            // leaves the rest of the region uniform).
            let mut next = t;
            if !self.rob.is_empty() && !self.rob.is_done(0) {
                let head_cluster = self.rob.cluster(0);
                for s in self.rob.srcs(0) {
                    if !s.is_some() {
                        continue;
                    }
                    let info = self.reg_info[s.class_index()][s.phys()];
                    debug_assert_ne!(
                        info.avail, IN_FLIGHT,
                        "head operands have committed producers"
                    );
                    let cross =
                        info.avail + self.cfg.fast_forward.penalty(info.cluster, head_cluster);
                    for bp in [info.avail, cross] {
                        if bp > at && bp < next {
                            next = bp;
                        }
                    }
                }
            }
            self.attr
                .as_mut()
                .expect("caller checked")
                .charge_cycles(next - at, bucket);
            at = next;
        }
    }

    /// Closes the run: subtracts the warmup snapshot and assembles the
    /// [`Report`].
    pub(crate) fn finish(mut self, timeline_out: Option<&mut Vec<UopTiming>>) -> Report {
        if let (Some((entries, _)), Some(out)) = (self.timeline.take(), timeline_out) {
            *out = entries;
        }
        let base = self.snap.take().unwrap_or_default();
        let per_cluster: Vec<u64> = self
            .clusters
            .iter()
            .enumerate()
            .map(|(i, c)| c.dispatched - base.per_cluster.get(i).copied().unwrap_or(0))
            .collect();
        let groups = self.unbalance.groups() - base.unbalance_groups;
        let flagged = self.unbalance.unbalanced() - base.unbalance_flagged;
        Report {
            cycles: (self.cycle - base.cycle).max(1),
            uops: self.retired - base.retired,
            branches: self.branches - base.branches,
            mispredicts: self.mispredicts - base.mispredicts,
            per_cluster,
            unbalance_percent: if groups == 0 {
                0.0
            } else {
                100.0 * flagged as f64 / groups as f64
            },
            stalls: self.stalls,
            memory: self.hierarchy.stats(),
            rename: self.renamer.stats(),
            store_forwards: self.store_forwards - base.store_forwards,
            deadlocked: self.deadlocked,
            deadlock_recoveries: self.recoveries,
            per_thread_uops: self.thread_retired.clone(),
            attribution: self.attr.take().map(|a| match &base.attr {
                Some(b) => a.since(b),
                None => a,
            }),
        }
    }

    /// Charges this cycle's `fetch_width` commit slots: the retired µops
    /// to `Committed`, the slack to one stall bucket chosen by
    /// [`Self::stall_bucket`]. Runs after `issue()`, so a head that found
    /// an issue slot this cycle is never misattributed as contention.
    fn attribute_cycle(&mut self) {
        let committed = self.committed_this_cycle;
        let bucket = if committed >= self.cfg.fetch_width as u64 {
            SlotBucket::Committed
        } else {
            self.stall_bucket_at(self.cycle)
        };
        let attr = self.attr.as_mut().expect("caller checked");
        attr.charge_cycle(committed, bucket);
        if bucket == SlotBucket::RenameStall && committed < self.cfg.fetch_width as u64 {
            if let Some((class, subset)) = self.blocked_subset {
                attr.note_rename_refusal(class_index(class), subset.index());
            }
        }
    }

    /// Picks the stall bucket for cycle `at` when it retires fewer than
    /// `fetch_width` µops. Retirement-centric: the oldest in-flight µop
    /// explains the machine's inability to commit; the dispatch stage is
    /// consulted only when the window is empty (or its head is too young
    /// to have had an issue opportunity). `at` is the current cycle on the
    /// per-cycle path; the event-horizon skip ([`Self::charge_skipped`])
    /// probes future cycles against the settled end-of-cycle state, which
    /// is exact because nothing in a dead region mutates the state this
    /// function reads.
    fn stall_bucket_at(&self, at: u64) -> SlotBucket {
        if !self.rob.is_empty() {
            if self.rob.dispatch_cycle(0) < at {
                return self.head_bucket_at(at);
            }
            // Head dispatched this very cycle: the window is filling.
            return SlotBucket::Fill;
        }
        match self.dispatch_block {
            DispatchBlock::Rename | DispatchBlock::Frozen => SlotBucket::RenameStall,
            DispatchBlock::Window => SlotBucket::WindowStall,
            DispatchBlock::Frontend | DispatchBlock::None => {
                if self.redirects.iter().any(|r| !matches!(r, Redirect::None)) {
                    SlotBucket::Redirect
                } else if self.fetch_bufs.iter().any(|b| !b.is_empty()) {
                    SlotBucket::Fill
                } else {
                    SlotBucket::EmptyWindow
                }
            }
        }
    }

    /// Why the (old-enough) ROB head did not retire at cycle `at`.
    fn head_bucket_at(&self, at: u64) -> SlotBucket {
        if self.rob.is_done(0) {
            // Issued, executing. Loads (and stores in their cache access)
            // are memory-bound; everything else is execution latency.
            return if self.rob.is_load(0) || self.rob.is_store(0) {
                SlotBucket::Memory
            } else {
                SlotBucket::ExecLatency
            };
        }
        // Waiting. Operand not yet usable?
        let head_cluster = self.rob.cluster(0);
        for s in self.rob.srcs(0) {
            if !s.is_some() {
                continue;
            }
            let info = self.reg_info[s.class_index()][s.phys()];
            if info.avail == IN_FLIGHT || at < info.avail {
                // Producer unissued or still executing.
                return if info.from_load {
                    SlotBucket::Memory
                } else {
                    SlotBucket::ExecLatency
                };
            }
            if at < info.avail + self.cfg.fast_forward.penalty(info.cluster, head_cluster) {
                // Produced, but still crossing clusters.
                return SlotBucket::ForwardBubble;
            }
        }
        // Operands usable; what else gates issue?
        let mem_seq = self.rob.mem_seq(0);
        if mem_seq != MEM_NONE && mem_seq != self.mem_next_issue[self.rob.thread(0) as usize] {
            return SlotBucket::Memory; // memory-order serialization
        }
        if self.vp.is_some() && !self.vp_can_alloc(self.rob.dst(0), None) {
            // Issue-time register allocation blocked (VP file full).
            return SlotBucket::RenameStall;
        }
        SlotBucket::FuContention
    }

    // ---- commit ----

    fn commit(&mut self) {
        self.committed_this_cycle = 0;
        for _ in 0..self.cfg.fetch_width {
            if self.rob.is_empty() || !self.rob.is_done(0) || self.rob.done_cycle(0) > self.cycle {
                break;
            }
            let slot = self.rob.pop_front();
            if let Some((entries, _)) = self.timeline.as_mut() {
                if let Some(e) = entries.get_mut(slot.seq as usize) {
                    e.commit = self.cycle;
                }
            }
            if slot.is_store() {
                let tagged = slot.eff_addr | ((slot.thread as u64) << 40);
                self.hierarchy.store(tagged, self.cycle);
                self.store_queues[slot.thread as usize].remove(slot.seq);
            }
            if slot.dst.is_some() {
                let old = slot.old_mapping();
                if let Some(vp) = self.vp.as_mut() {
                    vp.used[slot.dst.class_index()][old.subset.index()] -= 1;
                }
                self.renamer.free(slot.dst.class(), old, self.cycle);
            }
            self.clusters[slot.cluster as usize].window_occupancy -= 1;
            self.retired += 1;
            self.committed_this_cycle += 1;
            self.thread_retired[slot.thread as usize] += 1;
        }
    }

    // ---- fetch ----

    /// Fetches up to `fetch_width` µops from **one** thread this cycle,
    /// rotating round-robin and skipping threads that are redirect-blocked,
    /// buffer-full or exhausted (the classic RR SMT fetch policy).
    fn fetch<S: FetchStream>(&mut self, stream: &mut S) {
        let threads = self.cfg.threads;
        for offset in 0..threads {
            let tid = (self.cycle as usize + offset) % threads;
            if self.trace_done[tid] {
                continue;
            }
            match self.redirects[tid] {
                Redirect::WaitingResolve(_) => continue,
                Redirect::WaitingCycle(c) => {
                    if self.cycle < c {
                        continue;
                    }
                    self.redirects[tid] = Redirect::None;
                }
                Redirect::None => {}
            }
            if self.fetch_bufs[tid].len() >= self.fetch_buf_cap {
                continue;
            }
            self.fetch_thread(stream, tid);
            return; // one thread per cycle
        }
    }

    fn fetch_thread<S: FetchStream>(&mut self, stream: &mut S, tid: usize) {
        for _ in 0..self.cfg.fetch_width {
            if self.fetch_bufs[tid].len() >= self.fetch_buf_cap {
                return;
            }
            let Some(a) = stream.next(tid) else {
                self.trace_done[tid] = true;
                return;
            };
            if a.cond_branch {
                self.branches += 1;
                if a.mispredicted {
                    self.mispredicts += 1;
                }
            }
            let fetch_id = self.fetch_id_next;
            self.fetch_id_next += 1;
            self.fetch_bufs[tid].push_back(Fetched {
                d: a.d,
                fetch_cycle: self.cycle,
                fetch_id,
                mispredicted: a.mispredicted,
                choice: None,
            });
            if a.mispredicted {
                // Fetch stalls until the branch resolves; the wrong path is
                // never simulated.
                self.redirects[tid] = Redirect::WaitingResolve(fetch_id);
                return;
            }
        }
    }

    // ---- dispatch / rename ----

    fn dispatch(&mut self) {
        self.dispatch_block = DispatchBlock::None;
        if self.cycle < self.dispatch_frozen_until {
            self.dispatch_block = DispatchBlock::Frozen;
            return;
        }
        if self.fetch_bufs.iter().all(VecDeque::is_empty) {
            self.stalls.frontend += self.cfg.fetch_width as u64;
            self.dispatch_block = DispatchBlock::Frontend;
            let blocked = false;
            self.note_deadlock(blocked);
            return;
        }
        self.renamer.begin_cycle(self.cycle, self.cfg.fetch_width);
        let mut rename_blocked = false;
        let threads = self.cfg.threads;
        let mut budget = self.cfg.fetch_width;

        'threads: for offset in 0..threads {
            let tid = (self.cycle as usize + offset) % threads;
            while budget > 0 {
                let Some(front) = self.fetch_bufs[tid].front() else {
                    continue 'threads;
                };
                if front.fetch_cycle > self.cycle {
                    continue 'threads;
                }
                if self.rob.len() >= self.cfg.rob_size() {
                    self.stalls.window += 1;
                    self.dispatch_block = DispatchBlock::Window;
                    break 'threads;
                }
                let d = front.d;

                // Source operands: current mappings (younger µops renamed this
                // same cycle already updated the map — in-group dependency
                // propagation).
                let mut srcs = [PackedReg::NONE; 2];
                let mut src_subsets: [Option<Subset>; 2] = [None, None];
                for (i, s) in d.srcs.iter().enumerate() {
                    if let Some(r) = s {
                        let m = self.renamer.map_source_for(tid, *r);
                        srcs[i] = PackedReg::new(r.class(), m.phys.0);
                        src_subsets[i] = Some(m.subset);
                    }
                }

                let choice = match front.choice {
                    Some(c) => c,
                    None => {
                        self.occ_buf.clear();
                        self.occ_buf
                            .extend(self.clusters.iter().map(|c| c.window_occupancy));
                        // §2.3 workaround (a): steer placement freedom away from
                        // exhausted register subsets (WSRS only).
                        let free: Option<&[usize]> = match d.dst {
                            Some(dreg)
                                if self.cfg.avoid_exhaustion
                                    && self.cfg.mode == RegFileMode::Wsrs =>
                            {
                                self.free_buf.clear();
                                for s in 0..self.cfg.renamer.subsets {
                                    self.free_buf.push(
                                        self.renamer.allocatable_now(dreg.class(), Subset(s as u8)),
                                    );
                                }
                                Some(&self.free_buf)
                            }
                            _ => None,
                        };
                        let c =
                            self.allocator
                                .choose_avoiding(&d, src_subsets, &self.occ_buf, free);
                        self.fetch_bufs[tid]
                            .front_mut()
                            .expect("front exists")
                            .choice = Some(c);
                        c
                    }
                };
                let cl = choice.cluster.0 as usize;

                if self.clusters[cl].window_occupancy >= self.cfg.window_per_cluster {
                    self.stalls.window += 1;
                    self.dispatch_block = DispatchBlock::Window;
                    break 'threads;
                }

                // Destination rename, into the executing cluster's subset.
                let mut dst = PackedReg::NONE;
                let mut old_phys = 0u32;
                let mut old_subset = 0u8;
                if let Some(dreg) = d.dst {
                    let subset = match self.cfg.mode {
                        RegFileMode::Conventional => Subset(0),
                        _ => choice.cluster.subset(),
                    };
                    if !self.renamer.can_alloc(dreg.class(), subset) {
                        self.stalls.rename += 1;
                        rename_blocked = true;
                        self.blocked_subset = Some((dreg.class(), subset));
                        self.dispatch_block = DispatchBlock::Rename;
                        break 'threads;
                    }
                    let m = self
                        .renamer
                        .alloc(dreg.class(), subset)
                        .expect("can_alloc checked");
                    let old = self.renamer.rename_dest_for(tid, dreg, m);
                    let info = &mut self.reg_class_mut(dreg.class())[m.phys.0 as usize];
                    debug_assert_eq!(
                        info.wake_head, LINK_NONE,
                        "freed register still has waiters"
                    );
                    *info = RegInfo {
                        avail: IN_FLIGHT,
                        cluster: choice.cluster.0,
                        from_load: d.is_load(),
                        wake_head: LINK_NONE,
                    };
                    dst = PackedReg::new(dreg.class(), m.phys.0);
                    old_phys = old.phys.0;
                    old_subset = old.subset.0;
                }

                let fetched = self.fetch_bufs[tid].pop_front().expect("front exists");
                let seq = self.seq_next;
                self.seq_next += 1;
                budget -= 1;

                let mem_seq = if d.is_load() || d.is_store() {
                    let ms = self.mem_next_assign[tid];
                    self.mem_next_assign[tid] += 1;
                    if d.is_store() {
                        self.store_queues[tid].insert(seq, d.eff_addr.expect("store has address"));
                    }
                    ms
                } else {
                    MEM_NONE
                };

                // Event-scheduler registration: this consumer is threaded
                // onto each in-flight producer's intrusive waiter list (a
                // pointer write, no allocation); operands already produced
                // pin down the operand-ready cycle right now.
                let mut pending_srcs = 0u8;
                let mut next_waiter = [LINK_NONE; 2];
                if self.event_scheduler() {
                    let mut ready_at = self.cycle + 1;
                    for (i, s) in srcs.iter().enumerate() {
                        if !s.is_some() {
                            continue;
                        }
                        let info = &mut self.reg_info[s.class_index()][s.phys()];
                        if info.avail == IN_FLIGHT {
                            next_waiter[i] = info.wake_head;
                            info.wake_head = (seq << 1) | i as u64;
                            pending_srcs += 1;
                        } else {
                            ready_at = ready_at.max(
                                info.avail
                                    + self
                                        .cfg
                                        .fast_forward
                                        .penalty(info.cluster, choice.cluster.0),
                            );
                        }
                    }
                    if pending_srcs == 0 {
                        self.wheel.schedule(ready_at, seq);
                    }
                }

                self.clusters[cl].window_occupancy += 1;
                self.clusters[cl].dispatched += 1;
                self.unbalance.record(cl);

                if let Some((entries, limit)) = self.timeline.as_mut() {
                    if (seq as usize) < *limit {
                        debug_assert_eq!(entries.len() as u64, seq);
                        entries.push(UopTiming {
                            seq,
                            pc: d.pc,
                            op: d.op,
                            cluster: choice.cluster.0,
                            fetch: fetched.fetch_cycle,
                            dispatch: self.cycle,
                            issue: 0,
                            complete: 0,
                            commit: 0,
                        });
                    }
                }
                let mut flags = 0u8;
                if d.is_load() {
                    flags |= F_LOAD;
                }
                if d.is_store() {
                    flags |= F_STORE;
                }
                if fetched.mispredicted {
                    flags |= F_MISPREDICTED;
                }
                self.rob.push(SlotPush {
                    seq,
                    dispatch_cycle: self.cycle,
                    mem_seq,
                    srcs,
                    dst,
                    old_phys,
                    class: d.class,
                    cluster: choice.cluster.0,
                    thread: tid as u8,
                    flags,
                    pending_srcs,
                    old_subset,
                    next_waiter,
                    fetch_cycle: fetched.fetch_cycle,
                    fetch_id: fetched.fetch_id,
                    eff_addr: d.eff_addr.unwrap_or(0),
                });
            }
        }
        self.renamer.end_cycle(self.cycle);
        self.note_deadlock(rename_blocked);
    }

    fn note_deadlock(&mut self, rename_blocked: bool) {
        if self
            .deadlock
            .observe(rename_blocked, self.rob.is_empty() && rename_blocked)
        {
            if self.cfg.deadlock_recovery {
                self.recover_from_deadlock();
            } else {
                self.deadlocked = true;
            }
        }
    }

    /// The §2.3 workaround (b): an exception is raised; its handler issues
    /// moves that remap architectural registers from the exhausted subset
    /// onto other subsets. Detection guarantees the window is empty, so no
    /// in-flight µop can reference the moved physical registers. The
    /// exception costs a pipeline refill (modelled as the misprediction
    /// penalty).
    fn recover_from_deadlock(&mut self) {
        let Some((class, stuck)) = self.blocked_subset else {
            self.deadlocked = true;
            return;
        };
        debug_assert!(self.rob.is_empty(), "recovery requires a drained window");
        let subsets = self.cfg.renamer.subsets;
        // Move logical registers (of any hardware thread) out of the stuck
        // subset until a dispatch group's worth of headroom exists.
        let mut victims = std::mem::take(&mut self.victims_buf);
        victims.clear();
        for tid in 0..self.cfg.threads {
            for (l, m) in self.renamer.map_table_for(tid, class).iter() {
                if m.subset == stuck {
                    victims.push((tid, l));
                }
            }
        }
        let mut moved = 0;
        let done_at = self.cycle + self.cfg.min_mispredict_penalty;
        for &(tid, logical) in &victims {
            if moved >= self.cfg.fetch_width {
                break;
            }
            let target = (0..subsets)
                .map(|s| Subset(s as u8))
                .filter(|&s| s != stuck)
                .max_by_key(|&s| self.renamer.available(class, s));
            let Some(target) = target else { break };
            if self.renamer.available(class, target) == 0 {
                break;
            }
            if let Some(new) = self
                .renamer
                .force_remap_for(tid, class, logical, target, self.cycle)
            {
                // The move's result becomes readable once the handler ends.
                self.reg_class_mut(class)[new.phys.0 as usize] = RegInfo {
                    avail: done_at,
                    cluster: new.subset.0 % self.cfg.clusters as u8,
                    from_load: false,
                    wake_head: LINK_NONE,
                };
                moved += 1;
            } else {
                break;
            }
        }
        self.victims_buf = victims;
        if moved == 0 {
            // No subset has a free register: unrecoverable.
            self.deadlocked = true;
            return;
        }
        self.dispatch_frozen_until = done_at;
        self.recoveries += 1;
        self.deadlock.reset();
        self.blocked_subset = None;
    }

    fn reg_class_mut(&mut self, class: RegClass) -> &mut [RegInfo] {
        &mut self.reg_info[class_index(class)]
    }

    fn reg_class(&self, class: RegClass) -> &[RegInfo] {
        &self.reg_info[class_index(class)]
    }

    // ---- issue / execute ----

    fn srcs_ready(&self, srcs: [PackedReg; 2], cluster: u8) -> bool {
        srcs.iter().all(|s| {
            if !s.is_some() {
                return true;
            }
            let info = self.reg_info[s.class_index()][s.phys()];
            info.avail != IN_FLIGHT
                && self.cycle >= info.avail + self.cfg.fast_forward.penalty(info.cluster, cluster)
        })
    }

    /// Whether a µop with destination `dst` may claim its physical
    /// register this cycle under virtual-physical allocation (always true
    /// without VP). `reserved` counts *older, still-unissued* destination
    /// µops per class/subset — each holds a reservation a younger µop may
    /// not consume, which makes allocation-at-issue deadlock-free.
    fn vp_can_alloc(&self, dst: PackedReg, reserved: Option<&[Vec<usize>; 2]>) -> bool {
        let Some(vp) = self.vp.as_ref() else {
            return true;
        };
        if !dst.is_some() {
            return true;
        }
        let (class, phys) = (dst.class(), dst.phys() as u32);
        let subset = self.cfg.renamer.phys_subset_of(class, phys);
        let ci = dst.class_index();
        let held = reserved.map_or(0, |r| r[ci][subset.index()]);
        vp.used[ci][subset.index()] + held < vp.capacity
    }

    /// Whether this run uses the event-driven scheduler. Virtual-physical
    /// configurations stay on the scan: VP subset reservations depend on
    /// observing every older waiting µop each cycle, which the event
    /// structures deliberately avoid.
    fn event_scheduler(&self) -> bool {
        self.vp.is_none() && !self.force_scan
    }

    fn issue(&mut self) {
        for c in &mut self.clusters {
            c.new_cycle();
        }
        if self.event_scheduler() {
            self.issue_event();
        } else {
            self.issue_scan();
        }
    }

    /// Issue-time bookkeeping shared by the event path and the legacy
    /// scan: timestamps completion, marks the slot done, advances memory
    /// order, and queues the deferred writeback / front-end redirect into
    /// the engine-owned scratch buffers.
    fn complete_issue(&mut self, i: usize) {
        let (lat, forwarded) = self.exec_latency(i);
        if forwarded {
            self.store_forwards += 1;
        }
        let done_cycle = self.cycle + u64::from(lat);
        self.rob.complete(i, done_cycle);
        if let Some((entries, _)) = self.timeline.as_mut() {
            if let Some(e) = entries.get_mut(self.rob.seq_at(i) as usize) {
                e.issue = self.cycle;
                e.complete = done_cycle;
            }
        }
        if self.rob.mem_seq(i) != MEM_NONE {
            self.mem_next_issue[self.rob.thread(i) as usize] += 1;
        }
        let dst = self.rob.dst(i);
        if dst.is_some() {
            self.dest_updates.push((dst, done_cycle));
        }
        if self.rob.mispredicted(i) {
            let resume =
                (done_cycle + 1).max(self.rob.fetch_cycle(i) + self.cfg.min_mispredict_penalty);
            self.redirect_buf
                .push((self.rob.thread(i) as usize, self.rob.fetch_id(i), resume));
        }
    }

    /// Applies (and clears) the front-end redirects queued by
    /// [`Self::complete_issue`].
    fn apply_redirects(&mut self) {
        for k in 0..self.redirect_buf.len() {
            let (tid, fetch_id, resume) = self.redirect_buf[k];
            if self.redirects[tid] == Redirect::WaitingResolve(fetch_id) {
                self.redirects[tid] = Redirect::WaitingCycle(resume);
            }
        }
        self.redirect_buf.clear();
    }

    /// Event-driven selection: only µops whose operands are known-usable
    /// (tracked through intrusive waiter lists and the completion wheel)
    /// are examined, in ascending seq order — the same oldest-first order
    /// the scan produces, so all issue-time side effects (FU reservation,
    /// memory-order advancement, cache accesses) happen identically.
    ///
    /// Awake µops live in the window's per-cluster ready bitmaps
    /// ([`Rob::set_ready`]): the wheel wakes by setting a bit, and select
    /// is an age-ordered `trailing_zeros` walk over the planes of clusters
    /// that still own an issue slot — a cluster whose width is spent drops
    /// out of the mask, narrowing the select exactly as the paper's
    /// specialized windows do. A µop passed over (memory-order gate or FU
    /// contention) keeps its bit and is excluded for the rest of the cycle
    /// by the advancing `from` cursor, never re-examined.
    fn issue_event(&mut self) {
        self.due_buf.clear();
        self.wheel.drain_due(self.cycle, &mut self.due_buf);
        if !self.due_buf.is_empty() {
            let front_seq = self.rob.seq_front();
            for k in 0..self.due_buf.len() {
                let idx = (self.due_buf[k] - front_seq) as usize;
                debug_assert!(!self.rob.is_done(idx));
                self.rob.set_ready(idx);
            }
        }
        if self.rob.ready_count() == 0 {
            return;
        }
        debug_assert!(!self.rob.is_empty(), "ready µops live in the ROB");
        let front_seq = self.rob.seq_front();
        let mut avail = 0u32;
        for (c, cl) in self.clusters.iter().enumerate() {
            if cl.has_issue_slot() {
                avail |= 1 << c;
            }
        }
        let mut from = 0usize;
        while avail != 0 {
            let Some(idx) = self.rob.next_ready(from, avail) else {
                break;
            };
            from = idx + 1;
            debug_assert!(!self.rob.is_done(idx));
            debug_assert!(self.rob.dispatch_cycle(idx) < self.cycle);
            debug_assert!(self.srcs_ready(self.rob.srcs(idx), self.rob.cluster(idx)));
            let cluster = self.rob.cluster(idx) as usize;
            let mem_seq = self.rob.mem_seq(idx);
            let gates_ok = mem_seq == MEM_NONE
                || mem_seq == self.mem_next_issue[self.rob.thread(idx) as usize];
            if !gates_ok || !self.clusters[cluster].try_issue(self.rob.class(idx), self.cycle) {
                continue;
            }
            self.rob.clear_ready(idx);
            self.complete_issue(idx);
            if !self.clusters[cluster].has_issue_slot() {
                avail &= !(1 << cluster);
            }
        }

        // Deferred writeback (as in the scan: results issued this cycle are
        // not usable this cycle), then wake each completed register's
        // consumers by unlinking its waiter chain. A consumer whose last
        // in-flight operand just completed now has a fully known
        // operand-ready cycle and books a wheel slot.
        let mut k = 0;
        while k < self.dest_updates.len() {
            let (dst, done) = self.dest_updates[k];
            k += 1;
            let (ci, phys) = (dst.class_index(), dst.phys());
            let mut link;
            {
                let info = &mut self.reg_info[ci][phys];
                info.avail = done;
                link = std::mem::replace(&mut info.wake_head, LINK_NONE);
            }
            while link != LINK_NONE {
                let cseq = link >> 1;
                let csrc = (link & 1) as usize;
                let cidx = (cseq - front_seq) as usize;
                let (next, pending) = self.rob.take_waiter(cidx, csrc);
                link = next;
                if pending > 0 {
                    continue;
                }
                let csrcs = self.rob.srcs(cidx);
                let ccluster = self.rob.cluster(cidx);
                let mut ready_at = self.cycle + 1;
                for s in csrcs {
                    if !s.is_some() {
                        continue;
                    }
                    let info = self.reg_info[s.class_index()][s.phys()];
                    debug_assert_ne!(info.avail, IN_FLIGHT);
                    ready_at = ready_at
                        .max(info.avail + self.cfg.fast_forward.penalty(info.cluster, ccluster));
                }
                self.wheel.schedule(ready_at, cseq);
            }
        }
        self.dest_updates.clear();
        self.apply_redirects();
    }

    /// A waiting µop that does not issue this scan iteration keeps a
    /// reservation on its destination subset for the rest of the scan
    /// (VP only).
    fn vp_reserve_slot(&mut self, i: usize) {
        if self.vp.is_none() {
            return;
        }
        if self.rob.is_done(i) {
            return;
        }
        let dst = self.rob.dst(i);
        if !dst.is_some() {
            return;
        }
        let subset = self
            .cfg
            .renamer
            .phys_subset_of(dst.class(), dst.phys() as u32);
        self.vp_reserved[dst.class_index()][subset.index()] += 1;
    }

    /// Legacy O(window) selection scan, retained for virtual-physical
    /// configurations (and as the event scheduler's test oracle).
    fn issue_scan(&mut self) {
        // Virtual-physical reservations, accumulated oldest-first during
        // the scan below: once a waiting µop passes without issuing, its
        // destination subset keeps one slot reserved against all younger
        // µops this cycle.
        if self.vp.is_some() {
            for class in &mut self.vp_reserved {
                class.iter_mut().for_each(|c| *c = 0);
            }
        }

        // Single in-order pass: per-cluster oldest-first selection.
        for i in 0..self.rob.len() {
            let ready = {
                !self.rob.is_done(i)
                    && self.rob.dispatch_cycle(i) < self.cycle
                    && self.clusters[self.rob.cluster(i) as usize].has_issue_slot()
                    && self.srcs_ready(self.rob.srcs(i), self.rob.cluster(i))
                    && (self.rob.mem_seq(i) == MEM_NONE
                        || self.rob.mem_seq(i) == self.mem_next_issue[self.rob.thread(i) as usize])
                    && self.vp_can_alloc(self.rob.dst(i), Some(&self.vp_reserved))
            };
            if !ready {
                self.vp_reserve_slot(i);
                continue;
            }
            let cluster = self.rob.cluster(i) as usize;
            let class = self.rob.class(i);
            if !self.clusters[cluster].try_issue(class, self.cycle) {
                self.vp_reserve_slot(i);
                continue;
            }

            self.complete_issue(i);
            let dst = self.rob.dst(i);
            if dst.is_some() {
                if let Some(vp) = self.vp.as_mut() {
                    let subset = self
                        .cfg
                        .renamer
                        .phys_subset_of(dst.class(), dst.phys() as u32);
                    vp.used[dst.class_index()][subset.index()] += 1;
                }
            }
        }

        for k in 0..self.dest_updates.len() {
            let (dst, done) = self.dest_updates[k];
            self.reg_info[dst.class_index()][dst.phys()].avail = done;
        }
        self.dest_updates.clear();
        self.apply_redirects();
        self.vp_watch();
    }

    /// Virtual-physical anti-wedge: when the ROB head cannot claim a
    /// physical register because architectural state has concentrated in
    /// its destination subset (the issue-time analogue of §2.3), an
    /// exception moves architectural mappings out of that subset — the
    /// same workaround-(b) mechanism, applied to the VP file.
    fn vp_watch(&mut self) {
        const VP_BLOCK_THRESHOLD: u64 = 64;
        if self.vp.is_none() {
            return;
        }
        let blocked = if !self.rob.is_empty() && !self.rob.is_done(0) {
            let dst = self.rob.dst(0);
            if self.vp_can_alloc(dst, None) || !dst.is_some() {
                None
            } else {
                Some((self.rob.seq_front(), dst.class(), dst.phys() as u32))
            }
        } else {
            None
        };
        let Some((seq, class, phys)) = blocked else {
            self.vp_blocked = (u64::MAX, 0);
            return;
        };
        if self.vp_blocked.0 == seq {
            self.vp_blocked.1 += 1;
        } else {
            self.vp_blocked = (seq, 1);
        }
        if self.vp_blocked.1 < VP_BLOCK_THRESHOLD {
            return;
        }
        let stuck = self.cfg.renamer.phys_subset_of(class, phys);
        self.vp_recover(class, stuck);
        self.vp_blocked = (u64::MAX, 0);
    }

    fn vp_recover(&mut self, class: RegClass, stuck: Subset) {
        use std::collections::HashSet;
        let ci = class_index(class);
        // Tags that in-flight µops still reference (as sources, pending
        // destinations, or mappings to be freed at commit) cannot move.
        // (Cold path — a recovery already costs a pipeline refill — so a
        // transient set is fine here.)
        let mut pinned: HashSet<u32> = HashSet::new();
        for i in 0..self.rob.len() {
            for s in self.rob.srcs(i) {
                if s.is_some() && s.class_index() == ci {
                    pinned.insert(s.phys() as u32);
                }
            }
            let dst = self.rob.dst(i);
            if dst.is_some() && dst.class_index() == ci {
                pinned.insert(dst.phys() as u32);
                // The old mapping shares the destination's class.
                pinned.insert(self.rob.old_phys(i));
            }
        }
        let mut victims = std::mem::take(&mut self.victims_buf);
        victims.clear();
        for tid in 0..self.cfg.threads {
            for (l, m) in self.renamer.map_table_for(tid, class).iter() {
                if m.subset == stuck
                    && !pinned.contains(&m.phys.0)
                    && self.reg_class(class)[m.phys.0 as usize].avail != IN_FLIGHT
                {
                    victims.push((tid, l));
                }
            }
        }
        let done_at = self.cycle + self.cfg.min_mispredict_penalty;
        let subsets = self.cfg.renamer.subsets;
        let mut moved = 0;
        for &(tid, logical) in &victims {
            if moved >= self.cfg.fetch_width {
                break;
            }
            let vp = self.vp.as_ref().expect("vp_recover requires VP");
            let target = (0..subsets)
                .map(|s| Subset(s as u8))
                .filter(|&s| s != stuck)
                .filter(|&s| vp.used[ci][s.index()] + 1 < vp.capacity)
                .min_by_key(|&s| vp.used[ci][s.index()]);
            let Some(target) = target else { break };
            if let Some(new) = self
                .renamer
                .force_remap_for(tid, class, logical, target, self.cycle)
            {
                let vp = self.vp.as_mut().expect("checked");
                vp.used[ci][stuck.index()] -= 1;
                vp.used[ci][target.index()] += 1;
                self.reg_class_mut(class)[new.phys.0 as usize] = RegInfo {
                    avail: done_at,
                    cluster: new.subset.0 % self.cfg.clusters as u8,
                    from_load: false,
                    wake_head: LINK_NONE,
                };
                moved += 1;
            } else {
                break;
            }
        }
        self.victims_buf = victims;
        if moved > 0 {
            self.dispatch_frozen_until = self.dispatch_frozen_until.max(done_at);
            self.recoveries += 1;
        }
    }

    /// Execution latency for the µop in ROB slot `i`; returns
    /// `(latency, store_forwarded)`.
    fn exec_latency(&mut self, i: usize) -> (u32, bool) {
        let slow_read = self.reg_cache_penalty(i);
        if self.rob.is_load(i) {
            let addr = self.rob.eff_addr(i);
            let thread = self.rob.thread(i) as usize;
            match self.store_queues[thread].query(self.rob.seq_at(i), addr) {
                StoreQueueQuery::ForwardFrom(_) => (latency::LOAD_LATENCY + slow_read, true),
                StoreQueueQuery::NoConflict => {
                    let tagged = addr | ((thread as u64) << 40);
                    (self.hierarchy.load(tagged, self.cycle) + slow_read, false)
                }
            }
        } else {
            (latency::of(self.rob.class(i)) + slow_read, false)
        }
    }

    /// §6 \[4\]: operands older than the register cache's retention read
    /// from the slow full copy, adding latency to this µop.
    fn reg_cache_penalty(&self, i: usize) -> u32 {
        let Some(rc) = self.cfg.reg_cache else {
            return 0;
        };
        let stale = self.rob.srcs(i).iter().any(|s| {
            if !s.is_some() {
                return false;
            }
            let info = self.reg_info[s.class_index()][s.phys()];
            info.avail != IN_FLIGHT && self.cycle.saturating_sub(info.avail) > rc.retention_cycles
        });
        if stale {
            rc.slow_read_penalty
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocPolicy;
    use wsrs_isa::{Assembler, Emulator, Freg, Reg};
    use wsrs_mem::HierarchyConfig;
    use wsrs_regfile::RenameStrategy;

    fn perfect(mut cfg: SimConfig) -> SimConfig {
        cfg.hierarchy = HierarchyConfig::perfect();
        cfg
    }

    fn run_cfg(cfg: SimConfig, a: Assembler) -> Report {
        Simulator::new(cfg).run(Emulator::new(a.assemble(), 1 << 20))
    }

    /// A long chain of dependent single-cycle adds: IPC must approach 1.
    #[test]
    fn dependent_chain_is_serial() {
        let mut a = Assembler::new();
        let (x, n, i) = (Reg::new(1), Reg::new(2), Reg::new(3));
        a.li(x, 0);
        a.li(n, 2000);
        a.li(i, 0);
        let top = a.bind_label();
        a.addi(x, x, 1);
        a.addi(x, x, 1);
        a.addi(x, x, 1);
        a.addi(x, x, 1);
        a.addi(i, i, 1);
        a.blt(i, n, top);
        let r = run_cfg(perfect(SimConfig::conventional_rr(256)), a);
        // 4 serial adds per iteration dominate. Round-robin scatters the
        // chain across clusters, so each link pays the +1 inter-cluster
        // forwarding delay: ~8 cycles per 6-µop iteration, IPC ≈ 0.75.
        assert!(r.ipc() < 1.6, "ipc {}", r.ipc());
        assert!(r.ipc() > 0.6, "ipc {}", r.ipc());
    }

    /// Independent work should reach high IPC on an 8-way machine.
    #[test]
    fn independent_work_is_parallel() {
        let mut a = Assembler::new();
        let n = Reg::new(1);
        let i = Reg::new(2);
        a.li(n, 3000);
        a.li(i, 0);
        let top = a.bind_label();
        for k in 3..9 {
            a.addi(Reg::new(k), Reg::new(k), 1);
        }
        a.addi(i, i, 1);
        a.blt(i, n, top);
        let r = run_cfg(perfect(SimConfig::conventional_rr(256)), a);
        assert!(r.ipc() > 3.0, "ipc {}", r.ipc());
    }

    #[test]
    fn wsrs_configs_run_and_balance_reasonably() {
        for policy in [AllocPolicy::RandomMonadic, AllocPolicy::RandomCommutative] {
            let mut a = Assembler::new();
            let n = Reg::new(1);
            let i = Reg::new(2);
            a.li(n, 2000);
            a.li(i, 0);
            let top = a.bind_label();
            for k in 3..9 {
                a.addi(Reg::new(k), Reg::new(k), 1);
            }
            a.addi(i, i, 1);
            a.blt(i, n, top);
            let r = run_cfg(
                perfect(SimConfig::wsrs(512, policy, RenameStrategy::ExactCount)),
                a,
            );
            assert!(r.ipc() > 1.5, "{policy:?} ipc {}", r.ipc());
            let total: u64 = r.per_cluster.iter().sum();
            assert_eq!(total, r.uops);
            for &c in &r.per_cluster {
                assert!(c > 0, "{policy:?}: every cluster used");
            }
        }
    }

    #[test]
    fn mispredicts_cost_cycles() {
        // Data-dependent unpredictable branches (xorshift parity).
        let build = |_penalty: u64| {
            let mut a = Assembler::new();
            let (x, i, n, t) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
            a.li(x, 0x1234_5678);
            a.li(i, 0);
            a.li(n, 1500);
            let top = a.bind_label();
            // x ^= x << 13; x ^= x >> 7; x ^= x << 17
            a.slli(t, x, 13);
            a.xor(x, x, t);
            a.srli(t, x, 7);
            a.xor(x, x, t);
            a.slli(t, x, 17);
            a.xor(x, x, t);
            a.andi(t, x, 1);
            let skip = a.label();
            a.beqz(t, skip);
            a.addi(i, i, 0);
            a.bind(skip);
            a.addi(i, i, 1);
            a.blt(i, n, top);
            a
        };
        let base = run_cfg(perfect(SimConfig::conventional_rr(256)), build(17));
        assert!(
            base.mispredict_rate() > 0.2,
            "xorshift branches are unpredictable: {}",
            base.mispredict_rate()
        );
        // A predictable version of the same loop is much faster.
        let mut a = Assembler::new();
        let (i, n) = (Reg::new(2), Reg::new(3));
        a.li(i, 0);
        a.li(n, 1500);
        let top = a.bind_label();
        for k in 5..14 {
            a.addi(Reg::new(k), Reg::new(k), 1);
        }
        a.addi(i, i, 1);
        a.blt(i, n, top);
        let pred = run_cfg(perfect(SimConfig::conventional_rr(256)), a);
        assert!(
            pred.ipc() > 1.5 * base.ipc(),
            "pred {} vs base {}",
            pred.ipc(),
            base.ipc()
        );
    }

    #[test]
    fn store_load_forwarding_works() {
        let mut a = Assembler::new();
        let (b, v, o, i, n) = (
            Reg::new(1),
            Reg::new(2),
            Reg::new(3),
            Reg::new(4),
            Reg::new(5),
        );
        a.li(b, 0x1000);
        a.li(v, 7);
        a.li(i, 0);
        a.li(n, 500);
        let top = a.bind_label();
        a.sw(b, 0, v);
        a.lw(o, b, 0); // always forwards from the store
        a.addi(i, i, 1);
        a.blt(i, n, top);
        let r = run_cfg(SimConfig::conventional_rr(256), a);
        assert!(r.store_forwards >= 499, "forwards: {}", r.store_forwards);
    }

    #[test]
    fn cache_misses_slow_execution() {
        // Stride through 4 MB — every load misses both levels.
        let build = || {
            let mut a = Assembler::new();
            let (b, o, i, n) = (Reg::new(1), Reg::new(3), Reg::new(4), Reg::new(5));
            a.li(b, 0);
            a.li(i, 0);
            a.li(n, 400);
            let top = a.bind_label();
            a.lw(o, b, 0);
            a.add(Reg::new(6), Reg::new(6), o); // use the value
            a.addi(b, b, 8192);
            a.addi(i, i, 1);
            a.blt(i, n, top);
            a
        };
        let slow = run_cfg(SimConfig::conventional_rr(256), build());
        let fast = run_cfg(perfect(SimConfig::conventional_rr(256)), build());
        assert!(slow.cycles > 2 * fast.cycles);
        assert!(slow.memory.l1.misses > 300);
    }

    #[test]
    fn round_robin_unbalance_is_zero() {
        let mut a = Assembler::new();
        let (i, n) = (Reg::new(2), Reg::new(3));
        a.li(i, 0);
        a.li(n, 4000);
        let top = a.bind_label();
        for _ in 0..6 {
            a.addi(Reg::new(5), Reg::new(5), 1);
        }
        a.addi(i, i, 1);
        a.blt(i, n, top);
        let r = run_cfg(perfect(SimConfig::conventional_rr(256)), a);
        assert_eq!(r.unbalance_percent, 0.0);
    }

    #[test]
    fn wsrs_dest_subset_matches_cluster() {
        // Indirectly validated: a WSRS run with chained producers/consumers
        // must still compute the right dynamic schedule (no hangs, all µops
        // retire).
        let mut a = Assembler::new();
        let (x, y, i, n) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
        a.li(x, 1);
        a.li(y, 2);
        a.li(i, 0);
        a.li(n, 1000);
        let top = a.bind_label();
        a.add(x, x, y);
        a.add(y, y, x);
        a.addi(i, i, 1);
        a.blt(i, n, top);
        let r = run_cfg(
            perfect(SimConfig::wsrs(
                512,
                AllocPolicy::RandomCommutative,
                RenameStrategy::ExactCount,
            )),
            a,
        );
        assert_eq!(r.uops, 4 + 4 * 1000);
    }

    #[test]
    fn fp_code_runs_on_wsrs() {
        let mut a = Assembler::new();
        let (fa, fb) = (Freg::new(0), Freg::new(1));
        let (i, n, b) = (Reg::new(1), Reg::new(2), Reg::new(3));
        a.data_f64(0x100, 1.5);
        a.li(b, 0x100);
        a.li(i, 0);
        a.li(n, 500);
        a.lf(fa, b, 0);
        let top = a.bind_label();
        a.fmul(fb, fa, fa);
        a.fadd(fb, fb, fa);
        a.sf(b, 8, fb);
        a.addi(i, i, 1);
        a.blt(i, n, top);
        let r = run_cfg(
            SimConfig::wsrs(512, AllocPolicy::RandomMonadic, RenameStrategy::Recycling),
            a,
        );
        assert!(r.ipc() > 0.5, "ipc {}", r.ipc());
    }

    /// A mixed kernel exercising every pool of the Figure 2b organization.
    fn mixed_kernel() -> Assembler {
        let mut a = Assembler::new();
        let (i, n, b, x) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
        let (fa, fb) = (Freg::new(0), Freg::new(1));
        a.data_f64(0x100, 1.5);
        a.li(b, 0x100);
        a.lf(fa, b, 0);
        a.li(i, 0);
        a.li(n, 800);
        let top = a.bind_label();
        a.lw(x, b, 8);
        a.addi(x, x, 3);
        a.mul(Reg::new(5), x, x);
        a.fmul(fb, fa, fa);
        a.sw(b, 8, x);
        a.addi(i, i, 1);
        a.blt(i, n, top);
        a
    }

    #[test]
    fn pooled_machine_routes_every_class_to_its_pool() {
        let cfg = perfect(SimConfig::pooled_write_specialized(
            512,
            RenameStrategy::ExactCount,
        ));
        let r = run_cfg(cfg, mixed_kernel());
        // P0 = memory, P1 = simple ALU, P2 = FP/complex, P3 = branches.
        let mem_uops = 2 * 800 + 1; // lw + sw per iteration, one lf
        let br_uops = 800; // blt per iteration
        assert_eq!(r.per_cluster[0], mem_uops);
        assert_eq!(r.per_cluster[3], br_uops);
        assert!(r.per_cluster[1] > 0 && r.per_cluster[2] > 0);
        assert!(!r.deadlocked);
    }

    #[test]
    fn pooled_ws_stands_comparison_with_monolithic() {
        // §2: write specialization over pools of functional units does not
        // impair performance (static allocation, no extra rename stages).
        let mono = run_cfg(perfect(SimConfig::monolithic(256)), mixed_kernel());
        let pooled = run_cfg(
            perfect(SimConfig::pooled_write_specialized(
                512,
                RenameStrategy::ExactCount,
            )),
            mixed_kernel(),
        );
        assert!(
            pooled.ipc() > 0.9 * mono.ipc(),
            "pooled {} vs monolithic {}",
            pooled.ipc(),
            mono.ipc()
        );
    }

    #[test]
    fn monolithic_beats_clustered_on_dependent_chains() {
        // Complete bypass removes the inter-cluster cycle that round-robin
        // pays on every chain link.
        let chain = || {
            let mut a = Assembler::new();
            let (x, i, n) = (Reg::new(1), Reg::new(2), Reg::new(3));
            a.li(i, 0);
            a.li(n, 1000);
            let top = a.bind_label();
            a.addi(x, x, 1);
            a.addi(x, x, 1);
            a.addi(x, x, 1);
            a.addi(i, i, 1);
            a.blt(i, n, top);
            a
        };
        let mono = run_cfg(perfect(SimConfig::monolithic(256)), chain());
        let clustered = run_cfg(perfect(SimConfig::conventional_rr(256)), chain());
        assert!(
            mono.ipc() > 1.3 * clustered.ipc(),
            "mono {} vs clustered {}",
            mono.ipc(),
            clustered.ipc()
        );
    }

    #[test]
    fn tiny_subsets_deadlock_is_detected() {
        // 84 int regs over 4 subsets = 21 per subset with 20 architectural:
        // one free register per subset; sustained renaming wedges once a
        // subset's register holds architectural state for a stalled chain.
        let mut cfg = perfect(SimConfig::wsrs(
            512,
            AllocPolicy::RandomCommutative,
            RenameStrategy::ExactCount,
        ));
        cfg.renamer.int_regs = 84;
        cfg.renamer.fp_regs = 132;
        let mut a = Assembler::new();
        // Write many distinct logical registers so mappings migrate.
        let (i, n) = (Reg::new(70), Reg::new(71));
        a.li(i, 0);
        a.li(n, 3000);
        let top = a.bind_label();
        for k in 1..40 {
            a.addi(Reg::new(k), Reg::new(k), 1);
        }
        a.addi(i, i, 1);
        a.blt(i, n, top);
        let r = run_cfg(cfg, a);
        // Either it completes (lucky placement) or the deadlock monitor
        // fires; both are acceptable — what is NOT acceptable is an
        // infinite hang, which the monitor prevents.
        assert!(r.cycles > 0);
    }

    #[test]
    fn virtual_physical_sustains_window_with_fewer_registers() {
        // [13] applied on top of WS: a VP file with 40 physical registers
        // per subset (160 total) sustains the performance of the plain
        // 512-register machine, because registers are occupied only from
        // issue to superseding-commit.
        let kernel = || {
            let mut a = Assembler::new();
            let (i, n) = (Reg::new(1), Reg::new(2));
            a.li(i, 0);
            a.li(n, 1500);
            let top = a.bind_label();
            for k in 3..9 {
                a.addi(Reg::new(k), Reg::new(k), 1);
            }
            a.lw(Reg::new(9), Reg::new(1), 0);
            a.addi(i, i, 1);
            a.blt(i, n, top);
            a
        };
        let plain = run_cfg(
            perfect(SimConfig::write_specialized_rr(
                512,
                RenameStrategy::ExactCount,
            )),
            kernel(),
        );
        let vp_cfg = crate::config::SimConfigBuilder::from(perfect(
            SimConfig::write_specialized_rr(512, RenameStrategy::ExactCount),
        ))
        .virtual_physical(40)
        .build();
        let vp = run_cfg(vp_cfg, kernel());
        assert_eq!(vp.uops, plain.uops);
        assert!(!vp.deadlocked);
        assert!(
            vp.ipc() > 0.95 * plain.ipc(),
            "vp {} vs plain {}",
            vp.ipc(),
            plain.ipc()
        );
    }

    #[test]
    fn virtual_physical_reservation_prevents_wedge() {
        // Absurdly tight capacity (21/subset over 20 architectural): the
        // oldest-waiting reservation must still let everything retire.
        let mut cfg = perfect(SimConfig::write_specialized_rr(
            512,
            RenameStrategy::ExactCount,
        ));
        cfg.vp_phys_per_subset = Some(21);
        cfg.renamer.int_regs = 4096 * 4;
        cfg.renamer.fp_regs = 4096 * 4;
        let mut a = Assembler::new();
        let (i, n) = (Reg::new(1), Reg::new(2));
        a.li(i, 0);
        a.li(n, 300);
        let top = a.bind_label();
        for k in 3..40 {
            a.addi(Reg::new(k), Reg::new(k), 1);
        }
        a.addi(i, i, 1);
        a.blt(i, n, top);
        let r = run_cfg(cfg, a);
        assert!(!r.deadlocked);
        assert_eq!(r.uops, 2 + 300 * 39);
    }

    fn smt_cfg(int_regs: usize) -> SimConfig {
        crate::config::SimConfigBuilder::from(perfect(SimConfig::wsrs(
            int_regs,
            AllocPolicy::RandomCommutative,
            RenameStrategy::ExactCount,
        )))
        .threads(2)
        .deadlock_recovery(true)
        .build()
    }

    fn int_loop(iters: i64, regs: std::ops::Range<u8>) -> Assembler {
        let mut a = Assembler::new();
        let (i, n) = (Reg::new(60), Reg::new(61));
        a.li(i, 0);
        a.li(n, iters);
        let top = a.bind_label();
        for k in regs.clone() {
            a.addi(Reg::new(k), Reg::new(k), 1);
        }
        a.addi(i, i, 1);
        a.blt(i, n, top);
        a
    }

    #[test]
    fn smt_runs_two_threads_to_completion() {
        // §2.3 motivation: with two threads the machine renames 160 logical
        // integer registers; 512/4 = 128 per subset violates the static
        // rule, so the recovery exception must be available.
        let cfg = smt_cfg(512);
        assert!(!cfg
            .renamer
            .statically_deadlock_free(wsrs_isa::RegClass::Int));
        let t0 = int_loop(500, 1..6);
        let t1 = int_loop(400, 10..20);
        let expect0 = 2 + 500 * 7;
        let expect1 = 2 + 400 * 12;
        let r = Simulator::new(cfg).run_smt(vec![
            Emulator::new(t0.assemble(), 1 << 16),
            Emulator::new(t1.assemble(), 1 << 16),
        ]);
        assert!(!r.deadlocked);
        assert_eq!(r.per_thread_uops, vec![expect0, expect1]);
        assert_eq!(r.uops, expect0 + expect1);
    }

    #[test]
    fn smt_throughput_exceeds_either_thread_alone() {
        // Two copies of the same kernel: the shared 8-wide machine must
        // outrun a single thread (latency hiding), though not reach 2x.
        let build = || {
            let mut a = int_loop(1500, 1..5);
            a.halt();
            a.assemble()
        };
        let single = Simulator::new(perfect(SimConfig::wsrs(
            512,
            AllocPolicy::RandomCommutative,
            RenameStrategy::ExactCount,
        )))
        .run(Emulator::new(build(), 1 << 16));
        let smt = Simulator::new(smt_cfg(512)).run_smt(vec![
            Emulator::new(build(), 1 << 16),
            Emulator::new(build(), 1 << 16),
        ]);
        assert!(!smt.deadlocked);
        assert_eq!(smt.uops, 2 * single.uops);
        let speedup = single.cycles as f64 * 2.0 / smt.cycles as f64;
        assert!(
            speedup > 1.05,
            "SMT should beat serial execution: {speedup:.2}x"
        );
        assert!(speedup <= 2.05, "and cannot exceed 2x: {speedup:.2}x");
    }

    #[test]
    fn smt_with_one_thread_matches_plain_run() {
        let mut a = int_loop(800, 1..8);
        a.halt();
        let p = a.assemble();
        let cfg = perfect(SimConfig::wsrs(
            512,
            AllocPolicy::RandomCommutative,
            RenameStrategy::ExactCount,
        ));
        let plain = Simulator::new(cfg).run(Emulator::new(p.clone(), 1 << 16));
        let smt = Simulator::new(cfg).run_smt(vec![Emulator::new(p, 1 << 16)]);
        assert_eq!(plain.cycles, smt.cycles);
        assert_eq!(plain.uops, smt.uops);
    }

    #[test]
    fn smt_threads_do_not_forward_across_address_spaces() {
        // Both threads store to the "same" address in their own memories;
        // each must load back its own value (per-thread store queues and
        // thread-tagged cache lines).
        let build = |val: i64| {
            let mut a = Assembler::new();
            let (b, v, o, i, n) = (
                Reg::new(1),
                Reg::new(2),
                Reg::new(3),
                Reg::new(4),
                Reg::new(5),
            );
            a.li(b, 0x1000);
            a.li(v, val);
            a.li(i, 0);
            a.li(n, 200);
            let top = a.bind_label();
            a.sw(b, 0, v);
            a.lw(o, b, 0);
            a.add(Reg::new(6), Reg::new(6), o);
            a.addi(i, i, 1);
            a.blt(i, n, top);
            a.halt();
            a.assemble()
        };
        let r = Simulator::new(smt_cfg(512)).run_smt(vec![
            Emulator::new(build(7), 1 << 16),
            Emulator::new(build(9), 1 << 16),
        ]);
        assert!(!r.deadlocked);
        assert_eq!(r.per_thread_uops[0], r.per_thread_uops[1]);
        // forwarding still works within each thread
        assert!(r.store_forwards > 300);
    }

    #[test]
    fn empty_trace_is_harmless() {
        let r = Simulator::new(SimConfig::conventional_rr(256)).run(std::iter::empty());
        assert_eq!(r.uops, 0);
        assert_eq!(r.ipc(), 0.0);
        assert!(!r.deadlocked);
    }

    #[test]
    fn single_uop_program_retires() {
        let mut a = Assembler::new();
        a.li(Reg::new(1), 42);
        a.halt();
        let r = run_cfg(perfect(SimConfig::conventional_rr(256)), a);
        assert_eq!(r.uops, 1);
        assert!(r.cycles >= 1);
    }

    #[test]
    fn timeline_records_ordered_lifecycle() {
        let mut a = Assembler::new();
        let (x, i, n) = (Reg::new(1), Reg::new(2), Reg::new(3));
        a.li(i, 0);
        a.li(n, 50);
        let top = a.bind_label();
        a.addi(x, x, 1);
        a.addi(i, i, 1);
        a.blt(i, n, top);
        a.halt();
        let (report, timeline) = Simulator::new(perfect(SimConfig::conventional_rr(256)))
            .run_timeline(Emulator::new(a.assemble(), 4096), 64);
        assert_eq!(timeline.len(), 64);
        assert!(report.uops > 64);
        for (k, t) in timeline.iter().enumerate() {
            assert_eq!(t.seq, k as u64);
            assert!(t.fetch <= t.dispatch, "uop {k}");
            assert!(t.dispatch < t.issue, "uop {k}: issue after dispatch");
            assert!(t.issue < t.complete, "uop {k}");
            assert!(t.commit >= t.complete, "uop {k}");
        }
        // Commits are in program order.
        for w in timeline.windows(2) {
            assert!(w[0].commit <= w[1].commit);
        }
        // The render is well-formed.
        let text = crate::pipeview::render(&timeline, 80);
        assert!(text.lines().count() == 65);
    }

    #[test]
    fn predictor_quality_orders_performance() {
        use wsrs_frontend::PredictorKind;
        // A periodic, history-learnable branch (taken every third
        // iteration): gskew learns it, always-taken is wrong two thirds of
        // the time.
        let build = || {
            let mut a = Assembler::new();
            let (i, n, t, three) = (Reg::new(1), Reg::new(2), Reg::new(4), Reg::new(6));
            a.li(i, 0);
            a.li(n, 1500);
            a.li(three, 3);
            let top = a.bind_label();
            a.rem(t, i, three);
            let skip = a.label();
            a.beqz(t, skip); // taken every third iteration only
            a.addi(Reg::new(5), Reg::new(5), 1);
            a.bind(skip);
            a.addi(i, i, 1);
            a.blt(i, n, top);
            a
        };
        let run_with = |kind| {
            let mut cfg = perfect(SimConfig::conventional_rr(256));
            cfg.predictor = kind;
            run_cfg(cfg, build())
        };
        let oracle = run_with(PredictorKind::Perfect);
        let gskew = run_with(PredictorKind::TwoBcGskew512K);
        let taken = run_with(PredictorKind::AlwaysTaken);
        assert_eq!(oracle.mispredicts, 0);
        assert!(oracle.ipc() >= gskew.ipc());
        assert!(
            gskew.ipc() > taken.ipc(),
            "gskew {} vs always-taken {}",
            gskew.ipc(),
            taken.ipc()
        );
        // Always-taken mispredicts roughly half of the parity branches.
        assert!(taken.mispredict_rate() > 0.2);
    }

    /// Builds a kernel that migrates many logical registers between
    /// subsets — a deadlock generator for undersized subsets.
    fn migrating_kernel() -> (Assembler, u64) {
        let mut a = Assembler::new();
        let (i, n) = (Reg::new(70), Reg::new(71));
        a.li(i, 0);
        a.li(n, 400);
        let top = a.bind_label();
        for k in 1..50 {
            a.addi(Reg::new(k), Reg::new(k), 1);
        }
        a.addi(i, i, 1);
        a.blt(i, n, top);
        let uops = 2 + 400 * 51;
        (a, uops)
    }

    #[test]
    fn register_cache_slows_stale_reads_only() {
        use crate::config::RegCache;
        // A value produced early and read much later pays the slow-copy
        // penalty; freshly produced values do not.
        let kernel = || {
            let mut a = Assembler::new();
            let (inv, i, n, x) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
            a.li(inv, 7); // produced once, read forever (stale reads)
            a.li(i, 0);
            a.li(n, 2000);
            let top = a.bind_label();
            a.add(x, x, inv);
            a.addi(i, i, 1);
            a.blt(i, n, top);
            a
        };
        let plain = run_cfg(perfect(SimConfig::conventional_rr(256)), kernel());
        let cached = run_cfg(
            perfect(SimConfig::conventional_reg_cache(
                256,
                RegCache {
                    retention_cycles: 16,
                    slow_read_penalty: 2,
                },
            )),
            kernel(),
        );
        assert_eq!(plain.uops, cached.uops);
        assert!(
            cached.cycles > plain.cycles,
            "stale invariant reads must cost: {} vs {}",
            cached.cycles,
            plain.cycles
        );
        // A fresh-value chain is unaffected by the cache.
        let fresh = |cfg| {
            let mut a = Assembler::new();
            let (i, n, x) = (Reg::new(2), Reg::new(3), Reg::new(4));
            a.li(i, 0);
            let top = a.bind_label();
            a.addi(x, x, 1);
            a.li(n, 2000); // re-materialized: every operand stays fresh
            a.addi(i, i, 1);
            a.blt(i, n, top);
            run_cfg(cfg, a)
        };
        let p = fresh(perfect(SimConfig::conventional_rr(256)));
        let c = fresh(perfect(SimConfig::conventional_reg_cache(
            256,
            RegCache {
                retention_cycles: 16,
                slow_read_penalty: 2,
            },
        )));
        // Identical up to a cycle of drain noise (one early read of an
        // architectural reset value can age out).
        assert!(
            c.cycles <= p.cycles + 2,
            "fresh chains read at cached speed: {} vs {}",
            c.cycles,
            p.cycles
        );
    }

    #[test]
    fn exhaustion_avoidance_reduces_deadlocks() {
        // §2.3 workaround (a): with one spare register per subset, steering
        // placement freedom away from exhausted subsets lets the same
        // kernel that wedges under plain RC run much further (or finish).
        let make = |avoid: bool| {
            let mut cfg = perfect(SimConfig::wsrs(
                512,
                AllocPolicy::RandomCommutative,
                RenameStrategy::ExactCount,
            ));
            cfg.renamer.int_regs = 84;
            cfg.renamer.fp_regs = 132;
            cfg.avoid_exhaustion = avoid;
            cfg
        };
        let (prog, uops) = migrating_kernel();
        let plain = run_cfg(make(false), prog);
        let (prog, _) = migrating_kernel();
        let avoiding = run_cfg(make(true), prog);
        assert!(
            avoiding.uops > plain.uops || (!avoiding.deadlocked && avoiding.uops == uops),
            "avoidance should retire more: {} vs {} (of {uops})",
            avoiding.uops,
            plain.uops
        );
    }

    #[test]
    fn deadlock_recovery_completes_what_detection_aborts() {
        let make = |recovery: bool| {
            let mut cfg = perfect(SimConfig::wsrs(
                512,
                AllocPolicy::RandomCommutative,
                RenameStrategy::ExactCount,
            ));
            cfg.renamer.int_regs = 84; // 21/subset for 80 logicals: 1 spare
            cfg.renamer.fp_regs = 132;
            cfg.deadlock_recovery = recovery;
            cfg
        };
        let (prog, uops) = migrating_kernel();
        let without = run_cfg(make(false), prog);
        let (prog, _) = migrating_kernel();
        let with = run_cfg(make(true), prog);
        assert!(
            without.deadlocked,
            "the 1-spare-register configuration should wedge"
        );
        assert!(!with.deadlocked, "recovery should unwedge it");
        assert_eq!(with.uops, uops, "every µop retires after recovery");
        assert!(with.deadlock_recoveries > 0);
    }

    /// The event-driven scheduler must replay the legacy selection scan
    /// cycle for cycle: same issue order, same cache-state evolution, same
    /// counters — the whole report, bit for bit.
    #[test]
    fn event_scheduler_matches_scan_bit_for_bit() {
        let configs = vec![
            perfect(SimConfig::conventional_rr(256)),
            SimConfig::conventional_rr(256), // real memory hierarchy
            SimConfig::monolithic(256),
            SimConfig::wsrs(512, AllocPolicy::RandomMonadic, RenameStrategy::ExactCount),
            SimConfig::wsrs(
                512,
                AllocPolicy::RandomCommutative,
                RenameStrategy::Recycling,
            ),
            SimConfig::write_specialized_rr(512, RenameStrategy::ExactCount),
            perfect(SimConfig::pooled_write_specialized(
                512,
                RenameStrategy::ExactCount,
            )),
        ];
        for (ci, cfg) in configs.into_iter().enumerate() {
            let event = Engine::new(&cfg).run(Emulator::new(mixed_kernel().assemble(), 1 << 20), 0);
            let mut oracle = Engine::new(&cfg);
            oracle.force_scan = true;
            let scan = oracle.run(Emulator::new(mixed_kernel().assemble(), 1 << 20), 0);
            assert_eq!(
                format!("{event:?}"),
                format!("{scan:?}"),
                "schedulers diverge on config {ci}"
            );
        }
    }

    /// Scheduler equivalence through the warmup-snapshot path and under
    /// SMT (shared window, per-thread memory order).
    #[test]
    fn event_scheduler_matches_scan_warmup_and_smt() {
        let cfg = SimConfig::wsrs(512, AllocPolicy::RandomMonadic, RenameStrategy::ExactCount);
        let warm = |force_scan: bool| {
            let mut e = Engine::new(&cfg);
            e.force_scan = force_scan;
            e.run(
                Emulator::new(mixed_kernel().assemble(), 1 << 20).take(3000),
                1000,
            )
        };
        assert_eq!(format!("{:?}", warm(false)), format!("{:?}", warm(true)));

        let smt = smt_cfg(512);
        let run = |force_scan: bool| {
            let traces: Vec<Box<dyn Iterator<Item = DynInst>>> = vec![
                Box::new(Emulator::new(int_loop(500, 1..6).assemble(), 1 << 16)),
                Box::new(Emulator::new(int_loop(400, 10..20).assemble(), 1 << 16)),
            ];
            let mut e = Engine::new(&smt);
            e.force_scan = force_scan;
            e.run_inner(traces, 0, None)
        };
        assert_eq!(format!("{:?}", run(false)), format!("{:?}", run(true)));
    }

    /// Completion delays beyond the calendar wheel's ring take the
    /// overflow path; an inflated L2 penalty forces dependent loads well
    /// past the horizon and the result must still match the scan exactly.
    #[test]
    fn event_scheduler_overflow_matches_scan() {
        let mut cfg = SimConfig::conventional_rr(256);
        cfg.hierarchy.l2_miss_penalty = 5000;
        assert!(
            (cfg.scheduler_horizon() as u32) < cfg.hierarchy.l2_miss_penalty,
            "penalty must exceed the wheel horizon to exercise overflow"
        );
        // Pointer-stride loads: every access touches a fresh L1/L2 set, and
        // the dependent add waits the full (beyond-horizon) miss latency.
        let mut a = Assembler::new();
        let (b, x, acc, i, n) = (
            Reg::new(1),
            Reg::new(2),
            Reg::new(3),
            Reg::new(60),
            Reg::new(61),
        );
        a.li(b, 0);
        a.li(acc, 0);
        a.li(i, 0);
        a.li(n, 120);
        let top = a.bind_label();
        a.lw(x, b, 0);
        a.add(acc, acc, x);
        a.addi(b, b, 8192);
        a.addi(i, i, 1);
        a.blt(i, n, top);
        a.halt();
        let prog = a.assemble();
        let event = Engine::new(&cfg).run(Emulator::new(prog.clone(), 1 << 20), 0);
        let mut oracle = Engine::new(&cfg);
        oracle.force_scan = true;
        let scan = oracle.run(Emulator::new(prog, 1 << 20), 0);
        assert!(event.memory.l2.misses > 50, "kernel must actually miss L2");
        assert_eq!(format!("{event:?}"), format!("{scan:?}"));
    }

    /// The event-horizon fast path must actually engage on a stall-heavy
    /// kernel — long L2 misses leave hundreds of provably dead cycles per
    /// iteration — and change nothing observable: report and telemetry
    /// bit-identical to the forced cycle-by-cycle run.
    #[test]
    fn cycle_skipping_engages_and_preserves_reports() {
        let mut cfg = SimConfig::conventional_rr(256);
        cfg.hierarchy.l2_miss_penalty = 400;
        cfg.telemetry = true;
        let mut a = Assembler::new();
        let (b, x, acc, i, n) = (
            Reg::new(1),
            Reg::new(2),
            Reg::new(3),
            Reg::new(60),
            Reg::new(61),
        );
        a.li(b, 0);
        a.li(acc, 0);
        a.li(i, 0);
        a.li(n, 120);
        let top = a.bind_label();
        a.lw(x, b, 0);
        a.add(acc, acc, x);
        a.addi(b, b, 8192);
        a.addi(i, i, 1);
        a.blt(i, n, top);
        a.halt();
        let prog = a.assemble();
        let run = |allow_skip: bool| {
            let mut e = Engine::new(&cfg);
            e.allow_skip = allow_skip; // independent of the process env
            let mut stream = PredictedIters::new(
                vec![Emulator::new(prog.clone(), 1 << 20)],
                cfg.predictor.build(),
            );
            while e.step(&mut stream) {}
            let skipped = e.skipped_cycles;
            (skipped, e.finish(None))
        };
        let (skipped, fast) = run(true);
        let (none, slow) = run(false);
        assert_eq!(none, 0, "no-skip engine must not skip");
        assert!(
            skipped * 10 > fast.cycles,
            "skip must cover a real share of a memory-bound run: {skipped} of {}",
            fast.cycles
        );
        assert_eq!(format!("{fast:?}"), format!("{slow:?}"));
    }

    /// Skipping across a redirect stall: a mispredict-heavy kernel with a
    /// long minimum penalty spends most cycles with fetch redirect-blocked
    /// and an empty window (`WaitingCycle` frontier), and must still match
    /// the cycle-by-cycle run bit for bit.
    #[test]
    fn cycle_skipping_preserves_redirect_stalls() {
        let mut cfg = perfect(SimConfig::conventional_rr(256));
        cfg.min_mispredict_penalty = 60;
        cfg.telemetry = true;
        let mut a = Assembler::new();
        let (x, i, n, t) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
        a.li(x, 0x1234_5678);
        a.li(i, 0);
        a.li(n, 400);
        let top = a.bind_label();
        a.slli(t, x, 13);
        a.xor(x, x, t);
        a.srli(t, x, 7);
        a.xor(x, x, t);
        a.andi(t, x, 1);
        let skip = a.label();
        a.beqz(t, skip);
        a.addi(i, i, 0);
        a.bind(skip);
        a.addi(i, i, 1);
        a.blt(i, n, top);
        a.halt();
        let prog = a.assemble();
        let run = |allow_skip: bool| {
            let mut e = Engine::new(&cfg);
            e.allow_skip = allow_skip;
            let mut stream = PredictedIters::new(
                vec![Emulator::new(prog.clone(), 1 << 20)],
                cfg.predictor.build(),
            );
            while e.step(&mut stream) {}
            (e.skipped_cycles, e.finish(None))
        };
        let (skipped, fast) = run(true);
        let (_, slow) = run(false);
        assert!(skipped > 0, "redirect stalls must be skippable");
        assert_eq!(format!("{fast:?}"), format!("{slow:?}"));
    }

    /// Telemetry must observe, never perturb: the same run with and
    /// without attribution produces identical timing, and the attributed
    /// slots conserve (`sum == cycles × width`) with the committed bucket
    /// equal to the retired µop count.
    #[test]
    fn telemetry_conserves_and_does_not_perturb() {
        let configs = vec![
            SimConfig::conventional_rr(256),
            perfect(SimConfig::wsrs(
                384,
                AllocPolicy::RandomCommutative,
                RenameStrategy::Recycling,
            )),
        ];
        for cfg in configs {
            let plain = run_cfg(cfg, mixed_kernel());
            let mut tcfg = cfg;
            tcfg.telemetry = true;
            let traced = run_cfg(tcfg, mixed_kernel());
            assert_eq!(plain.cycles, traced.cycles, "telemetry perturbed timing");
            assert_eq!(plain.uops, traced.uops);
            assert!(plain.attribution.is_none());
            let attr = traced.attribution.expect("telemetry enabled");
            assert!(attr.conserved());
            assert_eq!(attr.width(), cfg.fetch_width as u64);
            assert_eq!(
                attr.slots(SlotBucket::Committed),
                traced.uops,
                "every retired µop fills exactly one committed slot"
            );
            // The attribution's own cycle counter covers every loop
            // iteration; the report's cycle count stops at the last
            // increment — they agree to within one cycle.
            assert!(attr.cycles() - traced.cycles <= 1);
        }
    }

    /// A subset-starved WSRS machine must show rename-stall slots with
    /// the exhausted (class, subset) identified.
    #[test]
    fn telemetry_attributes_rename_stalls() {
        let mut cfg = perfect(SimConfig::wsrs(
            96,
            AllocPolicy::RandomCommutative,
            RenameStrategy::ExactCount,
        ));
        cfg.telemetry = true;
        cfg.deadlock_recovery = true;
        let mut a = Assembler::new();
        let (i, n) = (Reg::new(50), Reg::new(51));
        a.li(i, 0);
        a.li(n, 800);
        let top = a.bind_label();
        for k in 1..20 {
            a.addi(Reg::new(k), Reg::new(k), 1);
        }
        a.addi(i, i, 1);
        a.blt(i, n, top);
        let r = run_cfg(cfg, a);
        let attr = r.attribution.expect("telemetry enabled");
        assert!(attr.conserved());
        if r.rename.alloc_refusals > 0 {
            assert!(
                attr.slots(SlotBucket::RenameStall) > 0,
                "refusals observed but no rename-stall slots charged"
            );
        }
    }

    /// A cache-thrashing loop must be dominated by memory-bucket slots.
    #[test]
    fn telemetry_attributes_memory_bound_cycles() {
        let mut cfg = SimConfig::conventional_rr(256);
        cfg.telemetry = true;
        let mut a = Assembler::new();
        let (b, o, i, n) = (Reg::new(1), Reg::new(3), Reg::new(4), Reg::new(5));
        a.li(b, 0);
        a.li(i, 0);
        a.li(n, 300);
        let top = a.bind_label();
        a.lw(o, b, 0);
        a.add(Reg::new(6), Reg::new(6), o);
        a.addi(b, b, 8192);
        a.addi(i, i, 1);
        a.blt(i, n, top);
        let r = run_cfg(cfg, a);
        let attr = r.attribution.expect("telemetry enabled");
        assert!(attr.conserved());
        assert!(
            attr.fraction(SlotBucket::Memory) > 0.3,
            "memory fraction {:.3} too small for a thrashing loop",
            attr.fraction(SlotBucket::Memory)
        );
    }
}
