//! Cluster geometry and functional-unit occupancy.
//!
//! Clusters are identical (paper §4.1): two integer ALUs (which also
//! resolve branches and hold the shared multiply/divide structure), one
//! load/store unit and one fully-pipelined FP unit, issuing at most two
//! µops per cycle — the Alpha EV6-like cluster of §5.2.

use wsrs_isa::{latency, OpClass};
use wsrs_regfile::Subset;

/// A cluster identifier. For the 4-cluster WSRS geometry, bit 1 is the
/// top/bottom (`f`) coordinate and bit 0 the left/right (`s`) coordinate —
/// cluster `Ci` writes register subset `Si` (paper Figure 3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClusterId(pub u8);

impl ClusterId {
    /// The register subset this cluster writes (register write
    /// specialization: `Ci` → `Si`).
    #[must_use]
    pub fn subset(self) -> Subset {
        Subset(self.0)
    }

    /// The `f` (top/bottom) coordinate.
    #[must_use]
    pub fn f(self) -> u8 {
        (self.0 >> 1) & 1
    }

    /// The `s` (left/right) coordinate.
    #[must_use]
    pub fn s(self) -> u8 {
        self.0 & 1
    }

    /// Builds the cluster from its `(f, s)` coordinates.
    #[must_use]
    pub fn from_bits(f: u8, s: u8) -> Self {
        ClusterId(((f & 1) << 1) | (s & 1))
    }
}

impl std::fmt::Display for ClusterId {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fm, "C{}", self.0)
    }
}

/// The functional-unit kind a µop class executes on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FuKind {
    /// One of the two single-cycle integer ALUs (also branches).
    Alu,
    /// The load/store unit.
    LdSt,
    /// The floating-point unit.
    Fp,
}

impl FuKind {
    /// Which unit executes `class`.
    #[must_use]
    pub fn for_class(class: OpClass) -> FuKind {
        match class {
            OpClass::IntAlu | OpClass::IntMulDiv | OpClass::Branch => FuKind::Alu,
            OpClass::Load | OpClass::Store => FuKind::LdSt,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDivSqrt | OpClass::FpMove => FuKind::Fp,
        }
    }
}

/// Functional-unit complement of one execution domain (a symmetric
/// cluster, or one pool of the paper's Figure 2b organization).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Resources {
    /// µops issued per cycle.
    pub issue_width: u32,
    /// Single-cycle integer ALUs (also resolve branches).
    pub alus: u32,
    /// Load/store units.
    pub ldsts: u32,
    /// Floating-point units.
    pub fps: u32,
    /// Unpipelined integer multiply/divide structures.
    pub muldivs: u32,
    /// Unpipelined FP divide/sqrt structures.
    pub fpdivs: u32,
}

impl Resources {
    /// The paper's EV6-like cluster: 2-way issue, 2 ALUs, 1 load/store,
    /// 1 FP unit, one mul/div and one fdiv structure.
    #[must_use]
    pub fn ev6_cluster() -> Self {
        Resources {
            issue_width: 2,
            alus: 2,
            ldsts: 1,
            fps: 1,
            muldivs: 1,
            fpdivs: 1,
        }
    }

    /// Everything of a 4-cluster machine fused into one domain (the
    /// monolithic noWS-M machine of Figure 1a).
    #[must_use]
    pub fn monolithic_8way() -> Self {
        Resources {
            issue_width: 8,
            alus: 8,
            ldsts: 4,
            fps: 4,
            muldivs: 4,
            fpdivs: 4,
        }
    }
}

/// Most unpipelined structures any domain carries (the monolithic 8-way
/// fusion has 4 of each); bounding them lets [`ClusterState`] keep its
/// busy tables inline instead of on the heap.
const MAX_UNPIPELINED: usize = 8;

/// Per-cycle issue bookkeeping for one execution domain.
///
/// Call [`ClusterState::new_cycle`] once per cycle, then
/// [`ClusterState::try_issue`] for each candidate µop (oldest first).
#[derive(Clone, Debug)]
pub struct ClusterState {
    res: Resources,
    issued_this_cycle: u32,
    alus_used: u32,
    ldst_used: u32,
    fp_used: u32,
    /// Unpipelined structures: the cycle at which each frees up. Inline
    /// arrays (only the first `res.muldivs` / `res.fpdivs` entries are
    /// live) so issue never chases a heap pointer.
    muldiv_busy_until: [u64; MAX_UNPIPELINED],
    fpdiv_busy_until: [u64; MAX_UNPIPELINED],
    /// µops dispatched to this cluster and not yet committed.
    pub window_occupancy: usize,
    /// Total µops ever dispatched here (for the unbalance metric).
    pub dispatched: u64,
}

impl ClusterState {
    /// A symmetric paper cluster issuing at most `issue_width` µops per
    /// cycle (2 ALUs, 1 load/store, 1 FP unit).
    #[must_use]
    pub fn new(issue_width: u32) -> Self {
        Self::with_resources(Resources {
            issue_width,
            ..Resources::ev6_cluster()
        })
    }

    /// A domain with an explicit functional-unit complement.
    #[must_use]
    pub fn with_resources(res: Resources) -> Self {
        assert!(
            res.muldivs as usize <= MAX_UNPIPELINED && res.fpdivs as usize <= MAX_UNPIPELINED,
            "unpipelined structure count exceeds the inline busy tables"
        );
        ClusterState {
            res,
            issued_this_cycle: 0,
            alus_used: 0,
            ldst_used: 0,
            fp_used: 0,
            muldiv_busy_until: [0; MAX_UNPIPELINED],
            fpdiv_busy_until: [0; MAX_UNPIPELINED],
            window_occupancy: 0,
            dispatched: 0,
        }
    }

    /// Resets per-cycle counters.
    pub fn new_cycle(&mut self) {
        self.issued_this_cycle = 0;
        self.alus_used = 0;
        self.ldst_used = 0;
        self.fp_used = 0;
    }

    /// Whether this cluster still has an issue slot this cycle.
    #[must_use]
    pub fn has_issue_slot(&self) -> bool {
        self.issued_this_cycle < self.res.issue_width
    }

    /// Whether this domain has any unit capable of executing `class`
    /// (pooled organizations are asymmetric).
    #[must_use]
    pub fn can_execute(&self, class: OpClass) -> bool {
        match FuKind::for_class(class) {
            FuKind::Alu => {
                if class == OpClass::IntMulDiv {
                    self.res.muldivs > 0
                } else {
                    self.res.alus > 0
                }
            }
            FuKind::LdSt => self.res.ldsts > 0,
            FuKind::Fp => {
                if class == OpClass::FpDivSqrt {
                    self.res.fpdivs > 0
                } else {
                    self.res.fps > 0
                }
            }
        }
    }

    /// Reserves an unpipelined structure from `busy` if one is free.
    fn reserve_unpipelined(busy: &mut [u64], cycle: u64, occupy: u64) -> bool {
        if let Some(slot) = busy.iter_mut().find(|b| cycle >= **b) {
            *slot = cycle + occupy;
            true
        } else {
            false
        }
    }

    /// Attempts to issue a µop of `class` at `cycle`; on success reserves
    /// the issue slot and functional unit, returning `true`.
    pub fn try_issue(&mut self, class: OpClass, cycle: u64) -> bool {
        if !self.has_issue_slot() {
            return false;
        }
        let ok = match FuKind::for_class(class) {
            FuKind::Alu => {
                if class == OpClass::IntMulDiv {
                    // The mul/div structure hangs off an ALU and is
                    // unpipelined (paper Table 2: 15 cycles).
                    if self.alus_used < self.res.alus
                        && Self::reserve_unpipelined(
                            &mut self.muldiv_busy_until[..self.res.muldivs as usize],
                            cycle,
                            u64::from(latency::of(class)),
                        )
                    {
                        self.alus_used += 1;
                        true
                    } else {
                        false
                    }
                } else if self.alus_used < self.res.alus {
                    self.alus_used += 1;
                    true
                } else {
                    false
                }
            }
            FuKind::LdSt => {
                if self.ldst_used < self.res.ldsts {
                    self.ldst_used += 1;
                    true
                } else {
                    false
                }
            }
            FuKind::Fp => {
                if class == OpClass::FpDivSqrt {
                    if self.fp_used < self.res.fps
                        && Self::reserve_unpipelined(
                            &mut self.fpdiv_busy_until[..self.res.fpdivs as usize],
                            cycle,
                            u64::from(latency::of(class)),
                        )
                    {
                        self.fp_used += 1;
                        true
                    } else {
                        false
                    }
                } else if self.fp_used < self.res.fps {
                    self.fp_used += 1;
                    true
                } else {
                    false
                }
            }
        };
        if ok {
            self.issued_this_cycle += 1;
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_bits_match_figure3() {
        // C1 = (f=0, s=1): top pair, right column.
        let c1 = ClusterId(1);
        assert_eq!(c1.f(), 0);
        assert_eq!(c1.s(), 1);
        assert_eq!(ClusterId::from_bits(1, 0), ClusterId(2));
        assert_eq!(ClusterId(3).subset(), Subset(3));
    }

    #[test]
    fn issue_width_limits_to_two() {
        let mut c = ClusterState::new(2);
        c.new_cycle();
        assert!(c.try_issue(OpClass::IntAlu, 0));
        assert!(c.try_issue(OpClass::IntAlu, 0));
        assert!(!c.try_issue(OpClass::Load, 0), "2-way issue exhausted");
        c.new_cycle();
        assert!(c.try_issue(OpClass::Load, 1));
    }

    #[test]
    fn one_ldst_unit_per_cluster() {
        let mut c = ClusterState::new(2);
        c.new_cycle();
        assert!(c.try_issue(OpClass::Load, 0));
        assert!(!c.try_issue(OpClass::Store, 0));
        assert!(c.try_issue(OpClass::IntAlu, 0), "ALU still free");
    }

    #[test]
    fn muldiv_is_unpipelined() {
        let mut c = ClusterState::new(2);
        c.new_cycle();
        assert!(c.try_issue(OpClass::IntMulDiv, 0));
        c.new_cycle();
        assert!(!c.try_issue(OpClass::IntMulDiv, 1), "busy for 15 cycles");
        c.new_cycle();
        assert!(c.try_issue(OpClass::IntMulDiv, 15));
    }

    #[test]
    fn fp_pipelined_but_div_blocks() {
        let mut c = ClusterState::new(2);
        c.new_cycle();
        assert!(c.try_issue(OpClass::FpDivSqrt, 0));
        c.new_cycle();
        assert!(!c.try_issue(OpClass::FpDivSqrt, 5));
        assert!(c.try_issue(OpClass::FpAdd, 5), "pipelined adds still flow");
        c.new_cycle();
        assert!(c.try_issue(OpClass::FpDivSqrt, 20));
    }

    #[test]
    fn monolithic_domain_issues_eight() {
        let mut c = ClusterState::with_resources(Resources::monolithic_8way());
        c.new_cycle();
        for _ in 0..8 {
            assert!(c.try_issue(OpClass::IntAlu, 0));
        }
        assert!(!c.try_issue(OpClass::IntAlu, 0), "8-way exhausted");
    }

    #[test]
    fn asymmetric_pool_rejects_wrong_classes() {
        // A load/store pool (Figure 2b): no ALUs, no FP.
        let pool = ClusterState::with_resources(Resources {
            issue_width: 4,
            alus: 0,
            ldsts: 4,
            fps: 0,
            muldivs: 0,
            fpdivs: 0,
        });
        assert!(pool.can_execute(OpClass::Load));
        assert!(pool.can_execute(OpClass::Store));
        assert!(!pool.can_execute(OpClass::IntAlu));
        assert!(!pool.can_execute(OpClass::FpAdd));
        assert!(!pool.can_execute(OpClass::IntMulDiv));
    }

    #[test]
    fn multiple_unpipelined_structures_overlap() {
        let mut c = ClusterState::with_resources(Resources {
            muldivs: 2,
            alus: 4,
            issue_width: 4,
            ..Resources::ev6_cluster()
        });
        c.new_cycle();
        assert!(c.try_issue(OpClass::IntMulDiv, 0));
        assert!(c.try_issue(OpClass::IntMulDiv, 0), "second structure free");
        assert!(!c.try_issue(OpClass::IntMulDiv, 0), "both busy");
        c.new_cycle();
        assert!(!c.try_issue(OpClass::IntMulDiv, 5));
        c.new_cycle();
        assert!(c.try_issue(OpClass::IntMulDiv, 15));
    }

    #[test]
    fn branches_share_alus() {
        let mut c = ClusterState::new(2);
        c.new_cycle();
        assert!(c.try_issue(OpClass::Branch, 0));
        assert!(c.try_issue(OpClass::IntAlu, 0));
        assert!(!c.try_issue(OpClass::Branch, 0), "both ALUs used");
    }
}
