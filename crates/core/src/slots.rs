//! Structure-of-arrays window (ROB) storage.
//!
//! PR 5 packed each in-flight µop into one 96-byte `repr(C)` row;
//! profiling the event-driven issue loop showed the row layout is what
//! bounds it. A 512-entry window of rows is ~70 KB, so every
//! ready-candidate probe, waiter-chain hop and head inspection lands on a
//! line that has long since been evicted. Splitting the window into
//! per-field lanes shrinks what each loop actually touches: the selection
//! scan reads `cluster`/`class`/`mem_seq`/`thread` (one byte lane each
//! plus one word lane — the whole scheduling working set now sits in L1),
//! the waiter walk touches only `next_waiter`/`pending_srcs`/`srcs`, and
//! commit drains the bookkeeping lanes nobody else reads.
//!
//! The batched lockstep engine ([`crate::batch`]) gives each
//! configuration lane its own [`Rob`], so per-slot state across a batch
//! is keyed `(config_lane, seq)` with no padding to a common row shape.
//!
//! The store is a power-of-two ring addressed by *logical* index
//! (0 = oldest). Sequence numbers are not stored: slots enter in
//! sequence order and leave only from the front, so
//! `seq(i) = seq_front + i`.

use wsrs_isa::{OpClass, RegClass};
use wsrs_regfile::{Mapping, PhysReg, Subset};

/// Index of a register class in class-indexed pairs.
pub(crate) fn class_index(class: RegClass) -> usize {
    match class {
        RegClass::Int => 0,
        RegClass::Fp => 1,
    }
}

// Slot flag bits.
pub(crate) const F_DONE: u8 = 1 << 0;
pub(crate) const F_LOAD: u8 = 1 << 1;
pub(crate) const F_STORE: u8 = 1 << 2;
pub(crate) const F_MISPREDICTED: u8 = 1 << 3;

/// Null link in the intrusive per-register waiter lists. A live link packs
/// `(seq << 1) | src_index`.
pub(crate) const LINK_NONE: u64 = u64::MAX;

/// A register operand (or destination) packed into one word:
/// `phys | class_index << 30`, with `u32::MAX` as the "absent" niche —
/// valid encodings never set bit 31, since physical indices stay far below
/// 2^30 (the largest budget, virtual-physical tag space, is 16 K).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct PackedReg(pub(crate) u32);

impl PackedReg {
    pub(crate) const NONE: PackedReg = PackedReg(u32::MAX);

    pub(crate) fn new(class: RegClass, phys: u32) -> Self {
        debug_assert!(phys < 1 << 30);
        PackedReg(phys | ((class_index(class) as u32) << 30))
    }

    pub(crate) fn is_some(self) -> bool {
        self != Self::NONE
    }

    pub(crate) fn class_index(self) -> usize {
        debug_assert!(self.is_some());
        ((self.0 >> 30) & 1) as usize
    }

    pub(crate) fn class(self) -> RegClass {
        if self.class_index() == 0 {
            RegClass::Int
        } else {
            RegClass::Fp
        }
    }

    pub(crate) fn phys(self) -> usize {
        (self.0 & ((1 << 30) - 1)) as usize
    }
}

/// Everything dispatch knows about a µop entering the window; the ring
/// scatters it into the field lanes.
pub(crate) struct SlotPush {
    pub seq: u64,
    pub dispatch_cycle: u64,
    pub mem_seq: u64,
    pub srcs: [PackedReg; 2],
    pub dst: PackedReg,
    pub old_phys: u32,
    pub class: OpClass,
    pub cluster: u8,
    pub thread: u8,
    pub flags: u8,
    pub pending_srcs: u8,
    pub old_subset: u8,
    pub next_waiter: [u64; 2],
    pub fetch_cycle: u64,
    pub fetch_id: u64,
    pub eff_addr: u64,
}

/// The fields commit consumes when the head retires.
pub(crate) struct Retired {
    pub seq: u64,
    pub dst: PackedReg,
    pub old_phys: u32,
    pub old_subset: u8,
    pub cluster: u8,
    pub thread: u8,
    pub flags: u8,
    pub eff_addr: u64,
}

impl Retired {
    pub(crate) fn is_store(&self) -> bool {
        self.flags & F_STORE != 0
    }

    /// The commit-time mapping to free (valid iff `dst.is_some()`).
    pub(crate) fn old_mapping(&self) -> Mapping {
        Mapping {
            phys: PhysReg(self.old_phys),
            subset: Subset(self.old_subset),
        }
    }
}

/// The structure-of-arrays reorder-buffer ring.
#[derive(Clone, Debug)]
pub(crate) struct Rob {
    head: usize,
    len: usize,
    mask: usize,
    /// Sequence number of the oldest slot (`seq_front + len` is the next
    /// sequence number dispatch will push).
    seq_front: u64,
    done_cycle: Vec<u64>,
    dispatch_cycle: Vec<u64>,
    mem_seq: Vec<u64>,
    srcs: Vec<[PackedReg; 2]>,
    dst: Vec<PackedReg>,
    old_phys: Vec<u32>,
    class: Vec<OpClass>,
    cluster: Vec<u8>,
    thread: Vec<u8>,
    flags: Vec<u8>,
    pending_srcs: Vec<u8>,
    old_subset: Vec<u8>,
    next_waiter: Vec<[u64; 2]>,
    fetch_cycle: Vec<u64>,
    fetch_id: Vec<u64>,
    eff_addr: Vec<u64>,
    /// Per-cluster ready bitmaps over *physical* ring positions — the
    /// software analogue of the paper's narrowed select. One plane of
    /// `ready_words` words per cluster; bit `p` of plane `c` is set while
    /// the µop in ring slot `p` (which steered to cluster `c`) is awake
    /// and awaiting issue. Physical positions are stable for a slot's
    /// lifetime, so a set bit never has to move; age order is recovered
    /// by scanning words from `head` around the ring.
    ready: Vec<u64>,
    ready_words: usize,
    planes: usize,
    /// Total bits set across all planes, for O(1) idle checks.
    ready_count: usize,
}

impl Rob {
    pub(crate) fn new(window: usize, planes: usize) -> Self {
        let cap = window.max(2).next_power_of_two();
        let ready_words = cap.div_ceil(64);
        Rob {
            head: 0,
            len: 0,
            mask: cap - 1,
            seq_front: 0,
            done_cycle: vec![0; cap],
            dispatch_cycle: vec![0; cap],
            mem_seq: vec![0; cap],
            srcs: vec![[PackedReg::NONE; 2]; cap],
            dst: vec![PackedReg::NONE; cap],
            old_phys: vec![0; cap],
            class: vec![OpClass::IntAlu; cap],
            cluster: vec![0; cap],
            thread: vec![0; cap],
            flags: vec![0; cap],
            pending_srcs: vec![0; cap],
            old_subset: vec![0; cap],
            next_waiter: vec![[LINK_NONE; 2]; cap],
            fetch_cycle: vec![0; cap],
            fetch_id: vec![0; cap],
            eff_addr: vec![0; cap],
            ready: vec![0; ready_words * planes.max(1)],
            ready_words,
            planes: planes.max(1),
            ready_count: 0,
        }
    }

    #[inline]
    fn at(&self, i: usize) -> usize {
        debug_assert!(i < self.len, "slot {i} out of window ({})", self.len);
        (self.head + i) & self.mask
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sequence number of the oldest slot. Meaningless when empty.
    #[inline]
    pub(crate) fn seq_front(&self) -> u64 {
        self.seq_front
    }

    #[inline]
    pub(crate) fn seq_at(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        self.seq_front + i as u64
    }

    pub(crate) fn push(&mut self, s: SlotPush) {
        assert!(self.len <= self.mask, "window overflow");
        debug_assert_eq!(s.seq, self.seq_front + self.len as u64);
        let p = (self.head + self.len) & self.mask;
        self.len += 1;
        self.done_cycle[p] = 0;
        self.dispatch_cycle[p] = s.dispatch_cycle;
        self.mem_seq[p] = s.mem_seq;
        self.srcs[p] = s.srcs;
        self.dst[p] = s.dst;
        self.old_phys[p] = s.old_phys;
        self.class[p] = s.class;
        self.cluster[p] = s.cluster;
        self.thread[p] = s.thread;
        self.flags[p] = s.flags;
        self.pending_srcs[p] = s.pending_srcs;
        self.old_subset[p] = s.old_subset;
        self.next_waiter[p] = s.next_waiter;
        self.fetch_cycle[p] = s.fetch_cycle;
        self.fetch_id[p] = s.fetch_id;
        self.eff_addr[p] = s.eff_addr;
    }

    /// Retires the head slot, returning the fields commit consumes.
    pub(crate) fn pop_front(&mut self) -> Retired {
        let p = self.at(0);
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
        let seq = self.seq_front;
        self.seq_front += 1;
        Retired {
            seq,
            dst: self.dst[p],
            old_phys: self.old_phys[p],
            old_subset: self.old_subset[p],
            cluster: self.cluster[p],
            thread: self.thread[p],
            flags: self.flags[p],
            eff_addr: self.eff_addr[p],
        }
    }

    #[inline]
    pub(crate) fn done_cycle(&self, i: usize) -> u64 {
        self.done_cycle[self.at(i)]
    }

    #[inline]
    pub(crate) fn dispatch_cycle(&self, i: usize) -> u64 {
        self.dispatch_cycle[self.at(i)]
    }

    #[inline]
    pub(crate) fn mem_seq(&self, i: usize) -> u64 {
        self.mem_seq[self.at(i)]
    }

    #[inline]
    pub(crate) fn srcs(&self, i: usize) -> [PackedReg; 2] {
        self.srcs[self.at(i)]
    }

    #[inline]
    pub(crate) fn dst(&self, i: usize) -> PackedReg {
        self.dst[self.at(i)]
    }

    #[inline]
    pub(crate) fn old_phys(&self, i: usize) -> u32 {
        self.old_phys[self.at(i)]
    }

    #[inline]
    pub(crate) fn class(&self, i: usize) -> OpClass {
        self.class[self.at(i)]
    }

    #[inline]
    pub(crate) fn cluster(&self, i: usize) -> u8 {
        self.cluster[self.at(i)]
    }

    #[inline]
    pub(crate) fn thread(&self, i: usize) -> u8 {
        self.thread[self.at(i)]
    }

    #[inline]
    pub(crate) fn flags(&self, i: usize) -> u8 {
        self.flags[self.at(i)]
    }

    #[inline]
    pub(crate) fn is_done(&self, i: usize) -> bool {
        self.flags(i) & F_DONE != 0
    }

    #[inline]
    pub(crate) fn is_load(&self, i: usize) -> bool {
        self.flags(i) & F_LOAD != 0
    }

    #[inline]
    pub(crate) fn is_store(&self, i: usize) -> bool {
        self.flags(i) & F_STORE != 0
    }

    #[inline]
    pub(crate) fn mispredicted(&self, i: usize) -> bool {
        self.flags(i) & F_MISPREDICTED != 0
    }

    #[inline]
    pub(crate) fn eff_addr(&self, i: usize) -> u64 {
        self.eff_addr[self.at(i)]
    }

    #[inline]
    pub(crate) fn fetch_cycle(&self, i: usize) -> u64 {
        self.fetch_cycle[self.at(i)]
    }

    #[inline]
    pub(crate) fn fetch_id(&self, i: usize) -> u64 {
        self.fetch_id[self.at(i)]
    }

    /// Marks slot `i` issued: records its completion cycle and sets
    /// [`F_DONE`].
    #[inline]
    pub(crate) fn complete(&mut self, i: usize, done_cycle: u64) {
        let p = self.at(i);
        self.done_cycle[p] = done_cycle;
        self.flags[p] |= F_DONE;
    }

    /// Unlinks and returns the waiter chain continuation hanging off
    /// source `src` of slot `i`, decrementing its pending-operand count.
    /// Returns `(next_link, remaining_pending)`.
    #[inline]
    pub(crate) fn take_waiter(&mut self, i: usize, src: usize) -> (u64, u8) {
        let p = self.at(i);
        let link = std::mem::replace(&mut self.next_waiter[p][src], LINK_NONE);
        self.pending_srcs[p] -= 1;
        (link, self.pending_srcs[p])
    }

    /// Ready µops currently awaiting selection, across all clusters.
    #[inline]
    pub(crate) fn ready_count(&self) -> usize {
        self.ready_count
    }

    /// Marks slot `i` awake: its cluster's plane gains the slot's ring
    /// bit. The slot must not already be marked.
    #[inline]
    pub(crate) fn set_ready(&mut self, i: usize) {
        let p = self.at(i);
        let c = self.cluster[p] as usize;
        debug_assert!(c < self.planes);
        let w = c * self.ready_words + (p >> 6);
        let bit = 1u64 << (p & 63);
        debug_assert_eq!(self.ready[w] & bit, 0, "slot woken twice");
        self.ready[w] |= bit;
        self.ready_count += 1;
    }

    /// Clears slot `i`'s ready bit (on issue). The slot must be marked.
    #[inline]
    pub(crate) fn clear_ready(&mut self, i: usize) {
        let p = self.at(i);
        let c = self.cluster[p] as usize;
        let w = c * self.ready_words + (p >> 6);
        let bit = 1u64 << (p & 63);
        debug_assert_ne!(self.ready[w] & bit, 0, "clearing a sleeping slot");
        self.ready[w] &= !bit;
        self.ready_count -= 1;
    }

    /// The oldest ready slot at logical index ≥ `from` whose cluster is in
    /// `cluster_mask`, or `None`. Age order is ring order: when
    /// `head + from` does not wrap, logical `[from, len)` occupies
    /// physical `[head+from, cap)` then `[0, head)`; when it wraps it is
    /// the single physical run `[head+from-cap, head)`. Slots logically
    /// before `from` (already passed over this cycle) keep their bits but
    /// sit outside the scanned segments; bits outside the live window are
    /// always clear. Word-level OR over the selected planes plus
    /// `trailing_zeros` makes this the narrowed select the paper argues
    /// for: saturated clusters drop out of the mask instead of being
    /// re-examined per candidate.
    pub(crate) fn next_ready(&self, from: usize, cluster_mask: u32) -> Option<usize> {
        if self.ready_count == 0 || from >= self.len {
            return None;
        }
        let cap = self.mask + 1;
        let p = if self.head + from < cap {
            self.scan_ready(self.head + from, cap, cluster_mask)
                .or_else(|| self.scan_ready(0, self.head, cluster_mask))
        } else {
            self.scan_ready(self.head + from - cap, self.head, cluster_mask)
        }?;
        let i = (p + cap - self.head) & self.mask;
        debug_assert!(i >= from && i < self.len);
        Some(i)
    }

    /// First set bit at a physical position in `[start, end)`, OR-ing the
    /// planes selected by `cluster_mask`.
    #[inline]
    fn scan_ready(&self, start: usize, end: usize, cluster_mask: u32) -> Option<usize> {
        let mut w = start >> 6;
        let last = end.div_ceil(64);
        let mut keep = !0u64 << (start & 63);
        while w < last {
            let mut word = 0u64;
            let mut cm = cluster_mask;
            while cm != 0 {
                let c = cm.trailing_zeros() as usize;
                cm &= cm - 1;
                word |= self.ready[c * self.ready_words + w];
            }
            word &= keep;
            if word != 0 {
                let p = (w << 6) + word.trailing_zeros() as usize;
                return (p < end).then_some(p);
            }
            keep = !0u64;
            w += 1;
        }
        None
    }
}
