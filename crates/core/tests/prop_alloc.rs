//! Property tests for the WSRS cluster-allocation invariant — the heart of
//! register read specialization (paper Figure 3): whatever the policy
//! decides, the chosen cluster must be able to read both operands.

use proptest::prelude::*;
use wsrs_core::alloc::Allocator;
use wsrs_core::{AllocPolicy, RegFileMode};
use wsrs_isa::{DynInst, Opcode, Reg};
use wsrs_regfile::Subset;

fn dyadic() -> DynInst {
    let mut d = DynInst::new(0, Opcode::Add);
    d.srcs = [Some(Reg::new(1).into()), Some(Reg::new(2).into())];
    d
}

fn monadic() -> DynInst {
    let mut d = DynInst::new(0, Opcode::Mov);
    d.srcs = [Some(Reg::new(1).into()), None];
    d
}

/// The read-specialization legality rule: on cluster C(f,s), the first
/// operand must live in a subset with matching `f` and the second in one
/// with matching `s` (after any swap the policy applied).
fn legal(cluster_f: u8, cluster_s: u8, first: Option<Subset>, second: Option<Subset>) -> bool {
    first.is_none_or(|x| x.f() == cluster_f) && second.is_none_or(|x| x.s() == cluster_s)
}

proptest! {
    /// Every policy decision satisfies the operand-reach constraint for
    /// dyadic µops, with or without swapping.
    #[test]
    fn dyadic_choices_are_legal(sa in 0u8..4, sb in 0u8..4, seed in any::<u64>(),
                                policy_idx in 0usize..3) {
        let policy = [AllocPolicy::RandomMonadic, AllocPolicy::RandomCommutative, AllocPolicy::LoadBalance][policy_idx];
        let mut alloc = Allocator::new(policy, RegFileMode::Wsrs, 4, seed);
        let loads = [3usize, 1, 4, 1];
        for _ in 0..16 {
            let c = alloc.choose(&dyadic(), [Some(Subset(sa)), Some(Subset(sb))], &loads);
            let (first, second) = if c.swapped {
                (Some(Subset(sb)), Some(Subset(sa)))
            } else {
                (Some(Subset(sa)), Some(Subset(sb)))
            };
            prop_assert!(
                legal(c.cluster.f(), c.cluster.s(), first, second),
                "{policy:?} chose {:?} (swapped={}) for S{sa},S{sb}",
                c.cluster, c.swapped
            );
        }
    }

    /// Monadic µops are likewise always placed on a cluster that can read
    /// the operand at the entry the chosen form uses.
    #[test]
    fn monadic_choices_are_legal(s in 0u8..4, seed in any::<u64>(), policy_idx in 0usize..3) {
        let policy = [AllocPolicy::RandomMonadic, AllocPolicy::RandomCommutative, AllocPolicy::LoadBalance][policy_idx];
        let mut alloc = Allocator::new(policy, RegFileMode::Wsrs, 4, seed);
        let loads = [0usize, 2, 2, 9];
        for _ in 0..16 {
            let c = alloc.choose(&monadic(), [Some(Subset(s)), None], &loads);
            let (first, second) = if c.swapped {
                (None, Some(Subset(s)))
            } else {
                (Some(Subset(s)), None)
            };
            prop_assert!(
                legal(c.cluster.f(), c.cluster.s(), first, second),
                "{policy:?} chose {:?} (swapped={}) for S{s}",
                c.cluster, c.swapped
            );
        }
    }

    /// RM never swaps (it does not assume commutative clusters).
    #[test]
    fn rm_never_swaps(sa in 0u8..4, sb in 0u8..4, seed in any::<u64>()) {
        let mut alloc = Allocator::new(AllocPolicy::RandomMonadic, RegFileMode::Wsrs, 4, seed);
        let c = alloc.choose(&dyadic(), [Some(Subset(sa)), Some(Subset(sb))], &[0; 4]);
        prop_assert!(!c.swapped);
        prop_assert_eq!(c.cluster.f(), Subset(sa).f());
        prop_assert_eq!(c.cluster.s(), Subset(sb).s());
    }

    /// Round-robin on a conventional machine touches all clusters evenly.
    #[test]
    fn round_robin_is_even(n in 4usize..64) {
        let mut alloc = Allocator::new(AllocPolicy::RoundRobin, RegFileMode::Conventional, 4, 0);
        let mut counts = [0usize; 4];
        for _ in 0..n * 4 {
            let c = alloc.choose(&dyadic(), [None, None], &[0; 4]);
            counts[c.cluster.0 as usize] += 1;
        }
        prop_assert_eq!(counts, [n; 4]);
    }
}
